"""End-to-end durability tests: corruption surfacing, atomic saves, and
crash-recovery parity.

The parity tests are the heart of the PR's acceptance criteria: a durable
database is churned with a scripted mutation stream, "crashed" by copying its
directory mid-flight (optionally cutting the WAL at a random byte offset),
recovered, and compared — on all four query families — against an
uninterrupted twin that applied exactly the mutations the log preserved.
"""

import shutil

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.database import FuzzyDatabase
from repro.core.requests import (
    AknnRequest,
    RangeRequest,
    ReverseRequest,
    SweepRequest,
)
from repro.exceptions import (
    FaultInjectedError,
    ObjectNotFoundError,
    StorageCorruptionError,
)
from repro.metrics.counters import MetricsCollector
from repro.service.faults import FaultPlan
from repro.service.sharded import ShardedDatabase

from tests.conftest import assert_same_assignments, make_fuzzy_object, sorted_exact_distances


def _initial_objects(seed: int, n: int):
    rng = np.random.default_rng(seed)
    return [make_fuzzy_object(rng, object_id=i) for i in range(n)]


def _scripted_ops(seed: int, initial_ids, n_ops: int, first_new_id: int = 100):
    """A deterministic insert/delete stream with explicit, never-reused ids.

    Returns ``[("insert", FuzzyObject) | ("delete", object_id), ...]``; every
    delete targets an id that is live at that point of the script, so any
    prefix of the stream is a valid mutation history.
    """
    rng = np.random.default_rng(seed)
    live = list(initial_ids)
    next_id = first_new_id
    ops = []
    for step in range(n_ops):
        if step % 3 == 2 and len(live) > 4:
            victim = live.pop(int(rng.integers(0, len(live))))
            ops.append(("delete", victim))
        else:
            obj = make_fuzzy_object(rng, object_id=next_id)
            ops.append(("insert", obj))
            live.append(next_id)
            next_id += 1
    return ops


def _apply(db, ops):
    for op, payload in ops:
        if op == "insert":
            db.insert(payload)
        else:
            db.delete(payload)


def _queries(seed: int, count: int = 2):
    rng = np.random.default_rng(seed)
    return [make_fuzzy_object(rng, center=[5.0, 5.0], spread=2.0) for _ in range(count)]


def assert_query_parity(recovered, twin, queries):
    """All four query families agree between ``recovered`` and ``twin``."""
    for query in queries:
        r = recovered.execute(AknnRequest(query, k=5, alpha=0.4))
        t = twin.execute(AknnRequest(query, k=5, alpha=0.4))
        np.testing.assert_allclose(
            sorted_exact_distances(recovered, r, query, 0.4),
            sorted_exact_distances(twin, t, query, 0.4),
            atol=1e-9,
        )

        r = recovered.execute(RangeRequest(query, alpha=0.5, radius=4.0))
        t = twin.execute(RangeRequest(query, alpha=0.5, radius=4.0))
        assert sorted(m[0] for m in r.matches) == sorted(m[0] for m in t.matches)
        np.testing.assert_allclose(
            sorted(m[1] for m in r.matches), sorted(m[1] for m in t.matches), atol=1e-9
        )

        r = recovered.execute(SweepRequest(query, k=3, alpha_range=(0.2, 0.9)))
        t = twin.execute(SweepRequest(query, k=3, alpha_range=(0.2, 0.9)))
        assert_same_assignments(r.assignments, t.assignments)

        r = recovered.execute(ReverseRequest(query, k=2, alpha=0.5))
        t = twin.execute(ReverseRequest(query, k=2, alpha=0.5))
        assert sorted(r.object_ids) == sorted(t.object_ids)


class TestStoreCorruption:
    """Satellite 1: a damaged data file surfaces path + offset, not garbage."""

    def _saved_dir(self, tmp_path):
        db = FuzzyDatabase.build(_initial_objects(3, 10))
        target = tmp_path / "saved"
        db.save(target)
        db.close()
        return target

    def test_truncated_data_file(self, tmp_path):
        directory = self._saved_dir(tmp_path)
        data = directory / "objects.dat"
        data.write_bytes(data.read_bytes()[: data.stat().st_size // 2])
        with pytest.raises(StorageCorruptionError) as excinfo:
            FuzzyDatabase.open(directory)
        assert excinfo.value.path is not None
        assert excinfo.value.offset is not None
        assert "objects.dat" in str(excinfo.value)

    def test_missing_data_file_with_catalog(self, tmp_path):
        directory = self._saved_dir(tmp_path)
        (directory / "objects.dat").write_bytes(b"")
        with pytest.raises(StorageCorruptionError) as excinfo:
            FuzzyDatabase.open(directory)
        assert excinfo.value.offset == 0

    def test_overwritten_record_magic(self, tmp_path):
        directory = self._saved_dir(tmp_path)
        data = directory / "objects.dat"
        raw = bytearray(data.read_bytes())
        raw[0:4] = b"XXXX"  # first record's magic
        data.write_bytes(bytes(raw))
        with pytest.raises(StorageCorruptionError) as excinfo:
            FuzzyDatabase.open(directory)
        assert excinfo.value.offset is not None


class TestAtomicSave:
    """Satellite 2: an interrupted save never clobbers the previous catalog."""

    def test_interrupted_replace_leaves_old_snapshot_usable(self, tmp_path, monkeypatch):
        objects = _initial_objects(7, 12)
        db = FuzzyDatabase.build(objects)
        target = tmp_path / "saved"
        db.save(target)
        baseline_ids = sorted(db.object_ids())

        # Mutate, then crash the second save at the publish step.
        extra = make_fuzzy_object(np.random.default_rng(9), object_id=500)
        db.insert(extra)

        import repro.core.database as database_module

        def exploding_replace(src, dst):
            raise OSError("simulated crash during catalog publish")

        monkeypatch.setattr(database_module.os, "replace", exploding_replace)
        with pytest.raises(OSError):
            db.save(target)
        monkeypatch.undo()
        db.close()

        # The directory still opens and serves the *previous* snapshot.
        reopened = FuzzyDatabase.open(target)
        reopened.validate()
        assert sorted(reopened.object_ids()) == baseline_ids
        assert 500 not in reopened.object_ids()
        reopened.close()

    def test_no_stray_tmp_catalog_after_success(self, tmp_path):
        db = FuzzyDatabase.build(_initial_objects(7, 6))
        target = tmp_path / "saved"
        db.save(target)
        db.close()
        assert not list(target.glob("*.tmp"))


class TestCrashRecoveryParitySingle:
    """Satellite 3 (single node): every random WAL cut recovers a consistent
    prefix, proven by query parity against an uninterrupted twin."""

    def test_randomized_cut_points(self, tmp_path):
        config = RuntimeConfig(snapshot_every=0)
        initial = _initial_objects(21, 18)
        ops = _scripted_ops(22, [o.object_id for o in initial], 24)
        queries = _queries(23)

        durable_dir = tmp_path / "durable"
        db = FuzzyDatabase.build(initial, config=config)
        db.enable_durability(durable_dir)
        # The initial snapshot truncated the log, so from here on one
        # mutation == one WAL record and the replay count identifies the
        # surviving prefix exactly.
        _apply(db, ops)
        wal_bytes = (durable_dir / "wal.log").read_bytes()

        cut_rng = np.random.default_rng(24)
        cuts = sorted(set(cut_rng.integers(8, len(wal_bytes), size=6).tolist()))
        cuts.append(len(wal_bytes))  # the no-data-lost case
        for cut in cuts:
            crashed = tmp_path / f"crash-{cut}"
            shutil.copytree(durable_dir, crashed)
            (crashed / "wal.log").write_bytes(wal_bytes[:cut])

            recovered = FuzzyDatabase.recover(crashed, config=config, resume=False)
            counters = recovered.metrics.as_dict()
            assert counters.get(MetricsCollector.RECOVERIES) == 1
            # Recovery must rebuild the tree with the counted STR path.
            assert counters.get(MetricsCollector.BULK_LOADS, 0) >= 1
            replayed = counters.get(MetricsCollector.WAL_REPLAYED, 0)
            assert 0 <= replayed <= len(ops)
            if cut == len(wal_bytes):
                assert replayed == len(ops)

            twin = FuzzyDatabase.build(initial, config=config)
            _apply(twin, ops[:replayed])
            assert sorted(recovered.object_ids()) == sorted(twin.object_ids())
            recovered.validate()
            assert_query_parity(recovered, twin, queries)
            recovered.close()
            twin.close()
        db.close()

    def test_resumed_recovery_keeps_accepting_mutations(self, tmp_path):
        config = RuntimeConfig(snapshot_every=0)
        initial = _initial_objects(31, 10)
        durable_dir = tmp_path / "durable"
        db = FuzzyDatabase.build(initial, config=config)
        db.enable_durability(durable_dir)
        ops = _scripted_ops(32, [o.object_id for o in initial], 9)
        _apply(db, ops)
        # Crash (no close), recover with resume, keep mutating, crash again.
        shutil.copytree(durable_dir, tmp_path / "unused")  # keep the original
        recovered = FuzzyDatabase.recover(durable_dir, config=config)
        assert recovered.durable
        more = _scripted_ops(33, recovered.object_ids(), 6, first_new_id=300)
        _apply(recovered, more)
        final_ids = sorted(recovered.object_ids())
        second = FuzzyDatabase.recover(durable_dir, config=config, resume=False)
        assert sorted(second.object_ids()) == final_ids
        second.close()
        recovered.close()
        db.close()


class TestCrashRecoveryParitySharded:
    """Satellite 3 (sharded): one shard crashes mid-append, the others keep
    going; recovery restores exactly the acknowledged mutations."""

    def test_partial_shard_crash_parity(self, tmp_path):
        config = RuntimeConfig(snapshot_every=0, service_shards=3)
        initial = _initial_objects(41, 21)
        ops = _scripted_ops(42, [o.object_id for o in initial], 30)
        queries = _queries(43)

        durable_dir = tmp_path / "durable"
        sharded = ShardedDatabase.build(initial, n_shards=3, config=config)
        sharded.enable_durability(durable_dir)
        # Shard 1 starts failing its WAL appends after 4 successful ones —
        # a crash of one worker while the rest of the fleet keeps serving.
        sharded.fault_plan = FaultPlan.parse("shard=1,op=wal_append,kind=raise,after=4")

        acknowledged = []
        failures = 0
        for op in ops:
            try:
                _apply(sharded, [op])
            except (FaultInjectedError, ObjectNotFoundError):
                # ObjectNotFoundError: the op deletes an id whose insert the
                # fault plan already rejected — equally unacknowledged.
                failures += 1
            else:
                acknowledged.append(op)
        assert failures > 0, "the fault plan never fired — test is vacuous"
        assert len(acknowledged) < len(ops)

        # Crash the whole deployment: copy the directory without closing.
        crashed = tmp_path / "crashed"
        shutil.copytree(durable_dir, crashed)
        # One surviving shard also gets a torn tail (crash artifact) on top.
        with open(crashed / "shard-0000" / "wal.log", "ab") as f:
            f.write(b"\xde\xad")

        recovered = ShardedDatabase.recover(crashed, config=config)
        counters = recovered.metrics.as_dict()
        assert counters.get(MetricsCollector.RECOVERIES) == 3
        assert counters.get(MetricsCollector.BULK_LOADS) == 3
        assert counters.get(MetricsCollector.WAL_TORN_TAILS, 0) >= 1

        twin = ShardedDatabase.build(initial, n_shards=3, config=config)
        _apply(twin, acknowledged)
        assert sorted(recovered.object_ids()) == sorted(twin.object_ids())
        recovered.validate()
        assert_query_parity(recovered, twin, queries)
        recovered.close()
        twin.close()
        sharded.close()
