"""Tests for the experiment harness (config, runner, experiments, reporting)."""

import numpy as np
import pytest

from repro.bench.config import (
    ExperimentConfig,
    LAPTOP_SCALE,
    PAPER_SCALE,
    TINY_SCALE,
    density_matched_space,
    scale_for_name,
)
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import (
    format_table,
    result_to_full_text,
    result_to_text,
    results_to_markdown,
    summarize_speedups,
)
from repro.bench.runner import ExperimentResult, run_aknn_batch, run_rknn_batch


#: A micro configuration so harness tests finish in a couple of seconds.
MICRO = ExperimentConfig(
    n_objects=60,
    points_per_object=25,
    n_values=(30, 60),
    k_values=(3, 5),
    alpha_values=(0.4, 0.8),
    range_lengths=(0.1, 0.3),
    k=4,
    n_queries=1,
    aknn_methods=("basic", "lb_lp_ub"),
    rknn_methods=("basic", "rss", "rss_icr"),
)


class TestConfig:
    def test_density_matched_space(self):
        # The paper's own scale maps back to its own space.
        assert density_matched_space(50_000) == pytest.approx(100.0)
        # A quarter of the objects -> half the side length (same density).
        assert density_matched_space(12_500) == pytest.approx(50.0)

    def test_space_for_explicit_override(self):
        config = ExperimentConfig(space_size=42.0)
        assert config.space_for(999) == 42.0

    def test_space_for_density_default(self):
        config = ExperimentConfig(space_size=None, n_objects=2000)
        assert config.space_for() == pytest.approx(density_matched_space(2000))

    def test_alpha_range(self):
        config = ExperimentConfig(range_start=0.4, range_length=0.2)
        assert config.alpha_range() == (0.4, pytest.approx(0.6))
        assert config.alpha_range(0.5) == (0.4, pytest.approx(0.9))

    def test_scaled_copy(self):
        scaled = LAPTOP_SCALE.scaled(n_objects=123)
        assert scaled.n_objects == 123
        assert LAPTOP_SCALE.n_objects != 123

    def test_presets(self):
        assert PAPER_SCALE.n_objects == 50_000
        assert TINY_SCALE.n_objects < LAPTOP_SCALE.n_objects
        assert scale_for_name("tiny") is TINY_SCALE
        with pytest.raises(ValueError):
            scale_for_name("galactic")

    def test_describe_mentions_key_parameters(self):
        text = MICRO.describe()
        assert "N=60" in text and "k=4" in text


class TestRunner:
    @pytest.fixture(scope="class")
    def micro_bundle(self):
        from repro.datasets.builder import DatasetBundle

        bundle = DatasetBundle.create(
            kind="synthetic",
            n_objects=MICRO.n_objects,
            points_per_object=MICRO.points_per_object,
            space_size=MICRO.space_for(),
            seed=MICRO.seed,
        )
        yield bundle
        bundle.database.close()

    def test_run_aknn_batch_keys(self, micro_bundle):
        queries = micro_bundle.queries(2)
        row = run_aknn_batch(micro_bundle.database, queries, k=3, alpha=0.5, method="basic")
        assert set(row) == {
            "object_accesses",
            "node_accesses",
            "distance_evaluations",
            "running_time",
        }
        assert row["object_accesses"] >= 3

    def test_run_rknn_batch_keys(self, micro_bundle):
        queries = micro_bundle.queries(1)
        row = run_rknn_batch(
            micro_bundle.database, queries, k=3, alpha_range=(0.4, 0.6), method="rss_icr"
        )
        assert row["result_size"] >= 3
        assert row["aknn_calls"] >= 1

    def test_experiment_result_series(self):
        result = ExperimentResult("x", "title", "k", ("object_accesses",))
        result.add_row(k=5, method="basic", object_accesses=10.0)
        result.add_row(k=10, method="basic", object_accesses=20.0)
        result.add_row(k=5, method="lb", object_accesses=8.0)
        assert result.methods() == ["basic", "lb"]
        assert result.parameter_values() == [5, 10]
        assert result.series("basic", "object_accesses") == [(5, 10.0), (10, 20.0)]


class TestExperiments:
    def test_registry_covers_every_figure(self):
        assert set(EXPERIMENTS) == {
            "fig15",
            "fig11a",
            "fig11b",
            "fig11c",
            "fig13a",
            "fig13b",
            "fig13c",
            "sec5",
        }

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_experiment("fig99", MICRO)

    def test_aknn_alpha_sweep_shape(self):
        result = run_experiment("fig11c", MICRO)
        assert result.parameter == "alpha"
        assert set(result.methods()) == set(MICRO.aknn_methods)
        assert len(result.rows) == len(MICRO.alpha_values) * len(MICRO.aknn_methods)
        assert all(row["object_accesses"] > 0 for row in result.rows)

    def test_rknn_range_sweep_shape(self):
        result = run_experiment("fig13c", MICRO)
        assert result.parameter == "range_length"
        assert set(result.methods()) == set(MICRO.rknn_methods)
        assert len(result.rows) == len(MICRO.range_lengths) * len(MICRO.rknn_methods)

    def test_cost_model_validation_rows(self):
        result = run_experiment("sec5", MICRO)
        assert set(result.methods()) == {"measured_basic", "predicted_eq8"}
        assert all(row["object_accesses"] > 0 for row in result.rows)


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "b"], [[1, 2.5], ["x", 0.00001]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_result_to_text_contains_methods_and_values(self):
        result = ExperimentResult("fig", "demo", "k", ("object_accesses",))
        result.add_row(k=5, method="basic", object_accesses=12.0)
        result.add_row(k=5, method="lb", object_accesses=7.0)
        text = result_to_text(result, "object_accesses")
        assert "basic" in text and "lb" in text and "12" in text

    def test_result_to_full_text_covers_all_metrics(self):
        result = ExperimentResult("fig", "demo", "k", ("object_accesses", "running_time"))
        result.add_row(k=5, method="basic", object_accesses=12.0, running_time=0.1)
        text = result_to_full_text(result)
        assert "object_accesses" in text and "running_time" in text

    def test_results_to_markdown(self):
        result = ExperimentResult("fig", "demo", "k", ("object_accesses",))
        result.add_row(k=5, method="basic", object_accesses=12.0)
        markdown = results_to_markdown([result])
        assert "### fig" in markdown
        assert "```" in markdown

    def test_summarize_speedups(self):
        result = ExperimentResult("fig", "demo", "k", ("object_accesses",))
        result.add_row(k=5, method="basic", object_accesses=100.0)
        result.add_row(k=5, method="rss", object_accesses=10.0)
        speedups = summarize_speedups(result, "object_accesses", baseline="basic")
        assert speedups["rss"] == pytest.approx(10.0)
