"""Tests for the Section-5 access cost model (Equations 6-8)."""

import math

import pytest

from repro.analysis.cost_model import (
    AccessCostModel,
    estimate_knn_radius,
    expected_knn_distance,
    gaussian_cut_radius,
)


class TestKnnRadius:
    def test_matches_equation6_closed_form(self):
        # eps = (1 / sqrt(pi)) * sqrt(k / (N - 1)) for D2 = 2
        k, n = 20, 50_000
        expected = math.sqrt(k / (n - 1)) / math.sqrt(math.pi)
        assert estimate_knn_radius(k, n) == pytest.approx(expected)

    def test_monotone_in_k_and_n(self):
        assert estimate_knn_radius(10, 1000) < estimate_knn_radius(20, 1000)
        assert estimate_knn_radius(10, 2000) < estimate_knn_radius(10, 1000)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            estimate_knn_radius(0, 100)
        with pytest.raises(ValueError):
            estimate_knn_radius(5, 1)


class TestGaussianCutRadius:
    def test_boundary_values(self):
        assert gaussian_cut_radius(1.0) == 0.0
        # As alpha approaches 0 the cut approaches the full object radius.
        assert gaussian_cut_radius(1e-9) == pytest.approx(0.5, abs=1e-3)

    def test_monotonically_shrinks(self):
        radii = [gaussian_cut_radius(alpha) for alpha in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert all(r1 >= r2 for r1, r2 in zip(radii, radii[1:]))

    def test_never_exceeds_object_radius(self):
        for alpha in (0.01, 0.2, 0.5, 0.99):
            assert 0.0 <= gaussian_cut_radius(alpha) <= 0.5

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            gaussian_cut_radius(0.0)


class TestExpectedKnnDistance:
    def test_clamped_at_zero_when_objects_overlap(self):
        # Huge objects relative to spacing -> expected distance zero.
        distance = expected_knn_distance(
            10, 100, 0.1, radius_function=lambda a: 10.0, space_size=1.0
        )
        assert distance == 0.0

    def test_grows_with_alpha(self):
        low = expected_knn_distance(
            20, 2000, 0.2, radius_function=gaussian_cut_radius, space_size=20.0
        )
        high = expected_knn_distance(
            20, 2000, 0.9, radius_function=gaussian_cut_radius, space_size=20.0
        )
        assert high >= low


class TestAccessCostModel:
    @pytest.fixture
    def model(self):
        return AccessCostModel.for_synthetic_dataset(n_objects=2000, space_size=20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AccessCostModel(n_objects=1, radius_function=lambda a: 0.0)
        with pytest.raises(ValueError):
            AccessCostModel(n_objects=10, radius_function=lambda a: 0.0, utilization=0.0)
        with pytest.raises(ValueError):
            AccessCostModel(n_objects=10, radius_function=lambda a: 0.0, space_size=-1.0)

    def test_prediction_positive_and_finite(self, model):
        for alpha in (0.3, 0.5, 0.7, 0.9):
            predicted = model.predict_object_accesses(20, alpha)
            assert math.isfinite(predicted)
            assert predicted >= 20  # at least the k results must be verified

    def test_monotone_in_k(self, model):
        assert model.predict_object_accesses(5, 0.5) <= model.predict_object_accesses(50, 0.5)

    def test_monotone_in_alpha(self, model):
        """Equation 8: more objects are accessed as alpha increases (the
        paper's Figure 11c trend for the basic search)."""
        predictions = [model.predict_object_accesses(20, alpha) for alpha in (0.3, 0.5, 0.7, 0.9)]
        assert all(p2 >= p1 - 1e-9 for p1, p2 in zip(predictions, predictions[1:]))

    def test_prediction_finite_across_dataset_sizes(self):
        """The prediction stays finite, positive and >= k at any dataset size.

        Note: unlike the paper's informal reading of Equation 8, the formula
        is not guaranteed to be monotone in N once the object radius R(alpha)
        dominates the shrinking k-NN radius; see EXPERIMENTS.md.
        """
        for n_objects in (100, 1000, 5000, 50_000):
            model = AccessCostModel.for_synthetic_dataset(n_objects=n_objects, space_size=20.0)
            predicted = model.predict_object_accesses(20, 0.5)
            assert math.isfinite(predicted)
            assert predicted >= 20

    def test_node_level_prediction_available(self):
        model = AccessCostModel.for_synthetic_dataset(n_objects=2000, space_size=20.0)
        nodes = model.predict_node_accesses(20, 0.5)
        objects = model.predict_object_accesses(20, 0.5)
        assert 0 < nodes <= objects

    def test_range_query_accesses_grow_with_radius(self, model):
        assert model.range_query_accesses(2.0) >= model.range_query_accesses(0.5)
        with pytest.raises(ValueError):
            model.range_query_accesses(-1.0)

    def test_sweeps(self, model):
        alpha_rows = model.sweep_alpha(20, (0.3, 0.5))
        assert [row["alpha"] for row in alpha_rows] == [0.3, 0.5]
        k_rows = model.sweep_k(0.5, (5, 10))
        assert [row["k"] for row in k_rows] == [5, 10]
        assert all(row["predicted_accesses"] > 0 for row in alpha_rows + k_rows)

    def test_prediction_in_plausible_range_vs_measurement(self, dense_database, dense_queries):
        """The model should land within an order of magnitude of a real
        measurement on a matching synthetic dataset (it is an asymptotic
        estimate, not an exact count)."""
        # dense_database: 60 synthetic objects, radius 0.5, space 8x8.
        model = AccessCostModel.for_synthetic_dataset(
            n_objects=60, space_size=8.0, node_capacity=8
        )
        measured = []
        for query in dense_queries:
            result = dense_database.aknn(query, k=5, alpha=0.5, method="basic")
            measured.append(result.stats.object_accesses)
        average = sum(measured) / len(measured)
        predicted = model.predict_object_accesses(5, 0.5)
        assert predicted / 10 <= average <= predicted * 10
