"""Shared fixtures for the test suite.

The fixtures deliberately keep datasets small (tens of objects, tens of
points) so the whole suite runs in seconds; correctness of the search
algorithms is asserted against the exhaustive linear scan, which is exact at
any scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.database import FuzzyDatabase
from repro.datasets.builder import build_dataset
from repro.datasets.queries import generate_query_object
from repro.fuzzy.fuzzy_object import FuzzyObject


def make_fuzzy_object(
    rng: np.random.Generator,
    n_points: int = 30,
    center=None,
    spread: float = 1.0,
    object_id=None,
) -> FuzzyObject:
    """A random fuzzy object with memberships spanning (0, 1]."""
    if center is None:
        center = rng.random(2) * 10.0
    points = np.asarray(center) + rng.normal(scale=spread, size=(n_points, 2))
    memberships = rng.random(n_points)
    memberships[int(rng.integers(0, n_points))] = 1.0  # ensure a kernel point
    memberships = np.clip(memberships, 1e-3, 1.0)
    return FuzzyObject(points, memberships, object_id=object_id)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for individual tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_objects(rng) -> list:
    """A handful of random fuzzy objects with explicit ids."""
    return [make_fuzzy_object(rng, object_id=i) for i in range(12)]


@pytest.fixture
def query_object(rng) -> FuzzyObject:
    """A random query fuzzy object."""
    return make_fuzzy_object(rng, center=[5.0, 5.0])


@pytest.fixture(scope="session")
def dense_database() -> FuzzyDatabase:
    """A session-wide synthetic database dense enough to exercise pruning.

    Sixty circle objects with Gaussian membership in an 8 x 8 space — the
    supports overlap, which is the regime the paper's optimisations target.
    """
    objects = build_dataset(
        kind="synthetic", n_objects=60, points_per_object=40, seed=42, space_size=8.0
    )
    database = FuzzyDatabase.build(objects, config=RuntimeConfig(rtree_max_entries=8))
    yield database
    database.close()


@pytest.fixture(scope="session")
def dense_queries() -> list:
    """Query objects matching :func:`dense_database`'s distribution."""
    rng = np.random.default_rng(777)
    return [
        generate_query_object(
            rng, kind="synthetic", space_size=8.0, points_per_object=40
        )
        for _ in range(3)
    ]


@pytest.fixture(scope="session")
def cell_database() -> FuzzyDatabase:
    """A small simulated-cell database (the stand-in for the real dataset)."""
    objects = build_dataset(
        kind="cells", n_objects=40, points_per_object=40, seed=5, space_size=7.0
    )
    database = FuzzyDatabase.build(objects, config=RuntimeConfig(rtree_max_entries=8))
    yield database
    database.close()


def sorted_exact_distances(database: FuzzyDatabase, result, query, alpha: float):
    """Exact alpha-distances of a result's neighbours, sorted ascending.

    Lazily-confirmed neighbours (no exact distance) are probed on demand so
    that results from different AKNN variants can be compared as multisets of
    distances, which is robust to ties.
    """
    from repro.fuzzy.alpha_distance import alpha_distance

    distances = []
    for neighbor in result.neighbors:
        if neighbor.distance is not None:
            distances.append(neighbor.distance)
        else:
            obj = database.get_object(neighbor.object_id)
            distances.append(alpha_distance(obj, query, alpha))
    return sorted(distances)


def assert_same_assignments(actual, expected, tol: float = 1e-7) -> None:
    """Assert two RKNN assignment maps describe the same qualifying ranges."""
    assert set(actual.keys()) == set(expected.keys()), (
        f"qualifying object sets differ: {sorted(actual)} vs {sorted(expected)}"
    )
    for object_id, expected_ranges in expected.items():
        assert actual[object_id].approx_equal(expected_ranges, tol=tol), (
            f"object {object_id}: {actual[object_id]} != {expected_ranges}"
        )
