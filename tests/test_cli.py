"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self):
        args = build_parser().parse_args(
            ["generate", "--output", "/tmp/db", "--n-objects", "50", "--kind", "cells"]
        )
        assert args.command == "generate"
        assert args.n_objects == 50
        assert args.kind == "cells"

    def test_aknn_defaults(self):
        args = build_parser().parse_args(["aknn"])
        assert args.k == 20
        assert args.alpha == 0.5
        assert args.method == "lb_lp_ub"

    def test_rknn_arguments(self):
        args = build_parser().parse_args(
            ["rknn", "--alpha-start", "0.2", "--alpha-end", "0.8", "--method", "rss"]
        )
        assert args.alpha_start == 0.2
        assert args.alpha_end == 0.8
        assert args.method == "rss"

    def test_experiment_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_generate_then_query_saved_database(self, tmp_path, capsys):
        db_dir = str(tmp_path / "db")
        exit_code = main(
            [
                "generate",
                "--output",
                db_dir,
                "--n-objects",
                "30",
                "--points-per-object",
                "15",
                "--space-size",
                "6",
            ]
        )
        assert exit_code == 0
        assert "wrote 30" in capsys.readouterr().out

        exit_code = main(
            ["aknn", "--database", db_dir, "--k", "3", "--space-size", "6",
             "--points-per-object", "15"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "AKNN(k=3" in output
        assert "object accesses" in output

    def test_aknn_on_generated_database(self, capsys):
        exit_code = main(
            ["aknn", "--n-objects", "25", "--points-per-object", "12", "--k", "2",
             "--space-size", "5"]
        )
        assert exit_code == 0
        assert "distance" in capsys.readouterr().out

    def test_rknn_on_generated_database(self, capsys):
        exit_code = main(
            ["rknn", "--n-objects", "25", "--points-per-object", "12", "--k", "2",
             "--space-size", "5", "--alpha-start", "0.4", "--alpha-end", "0.6"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "RKNN(k=2" in output
        assert "qualifying" in output

    @pytest.mark.parametrize("method", ["linear", "pruned", "batch"])
    def test_reverse_on_generated_database(self, capsys, method):
        exit_code = main(
            ["reverse", "--n-objects", "25", "--points-per-object", "12", "--k", "2",
             "--space-size", "5", "--method", method]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert f"REVERSE AKNN(k=2, alpha=0.5, method={method})" in output
        assert "candidates" in output


class TestReverseParser:
    def test_reverse_defaults(self):
        args = build_parser().parse_args(["reverse"])
        assert args.command == "reverse"
        assert args.alpha == 0.5
        assert args.method == "batch"

    def test_rknn_help_names_the_range_semantics(self, capsys):
        """The rknn subcommand is the alpha-range sweep, not reverse kNN; its
        help must say so and point at the reverse subcommand (regression for
        the ambiguous 'range kNN' wording)."""
        top_help = " ".join(build_parser().format_help().split())
        assert "alpha-range" in top_help
        assert "NOT reverse" in top_help
        with pytest.raises(SystemExit):
            main(["rknn", "--help"])
        rknn_help = " ".join(capsys.readouterr().out.split())
        assert "not a reverse kNN query" in rknn_help
        with pytest.raises(SystemExit):
            main(["reverse", "--help"])
        reverse_help = " ".join(capsys.readouterr().out.split())
        assert "monochromatic" in reverse_help
        for method in ("linear", "pruned", "batch"):
            assert method in reverse_help


class TestBatchCommand:
    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.n_queries == 64
        assert args.method == "lb_lp_ub"
        assert args.workers is None
        assert not args.stats

    def test_batch_on_generated_database(self, capsys):
        exit_code = main(
            ["batch", "--n-objects", "30", "--points-per-object", "12", "--k", "3",
             "--n-queries", "5", "--space-size", "5"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "BATCH AKNN(5 queries" in output
        assert "queries/sec" in output

    def test_stats_flag_dumps_cache_telemetry(self, capsys):
        exit_code = main(
            ["batch", "--n-objects", "30", "--points-per-object", "12", "--k", "3",
             "--n-queries", "4", "--space-size", "5", "--stats"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "counters:" in output
        assert "alpha-cut cache:" in output
        assert "store cache:" in output
        assert "throughput_qps" in output

    def test_aknn_stats_flag(self, capsys):
        exit_code = main(
            ["aknn", "--n-objects", "25", "--points-per-object", "12", "--k", "2",
             "--space-size", "5", "--stats"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "counters:" in output
        assert "lower_bound_evaluations" in output
