"""Unit tests for :class:`DistanceProfile` (critical probabilities, safe ranges)."""

import numpy as np
import pytest

from repro.exceptions import InvalidQueryError
from repro.fuzzy.profile import DistanceProfile


def step_profile():
    """Levels 0.2/0.5/0.8/1.0 with distances 1, 1, 3, 7 (flat piece at the start)."""
    return DistanceProfile([0.2, 0.5, 0.8, 1.0], [1.0, 1.0, 3.0, 7.0])


class TestConstruction:
    def test_valid(self):
        profile = step_profile()
        assert profile.levels.size == 4
        assert profile.min_distance == 1.0
        assert profile.max_distance == 7.0

    def test_rejects_unsorted_levels(self):
        with pytest.raises(ValueError):
            DistanceProfile([0.5, 0.2], [1.0, 2.0])

    def test_rejects_levels_outside_unit(self):
        with pytest.raises(ValueError):
            DistanceProfile([0.0, 0.5], [1.0, 2.0])
        with pytest.raises(ValueError):
            DistanceProfile([0.5, 1.2], [1.0, 2.0])

    def test_rejects_decreasing_distances(self):
        with pytest.raises(ValueError):
            DistanceProfile([0.2, 0.8], [3.0, 1.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            DistanceProfile([0.2, 0.8], [1.0])

    def test_constant_constructor(self):
        profile = DistanceProfile.constant(4.2)
        assert profile.value(0.3) == 4.2
        assert profile.value(1.0) == 4.2

    def test_from_pairs_sorts(self):
        profile = DistanceProfile.from_pairs([(1.0, 5.0), (0.3, 2.0)])
        assert profile.levels[0] == pytest.approx(0.3)
        assert profile.value(0.2) == 2.0


class TestEvaluation:
    def test_value_respects_piece_semantics(self):
        profile = step_profile()
        # distance for alpha in (0, 0.2] is 1.0, (0.2, 0.5] is 1.0,
        # (0.5, 0.8] is 3.0, (0.8, 1.0] is 7.0
        assert profile.value(0.1) == 1.0
        assert profile.value(0.2) == 1.0
        assert profile.value(0.5) == 1.0
        assert profile.value(0.500001) == 3.0
        assert profile.value(0.8) == 3.0
        assert profile.value(0.9) == 7.0
        assert profile.value(1.0) == 7.0

    def test_value_outside_domain_raises(self):
        profile = step_profile()
        with pytest.raises(InvalidQueryError):
            profile.value(0.0)
        with pytest.raises(InvalidQueryError):
            profile.value(1.1)

    def test_values_vectorised(self):
        profile = step_profile()
        np.testing.assert_allclose(
            profile.values([0.1, 0.6, 1.0]), [1.0, 3.0, 7.0]
        )


class TestCriticalProbabilities:
    def test_critical_set(self):
        profile = step_profile()
        # 0.2 is NOT critical (distance stays 1.0 after it); 0.5 and 0.8 are;
        # the last level is always included.
        np.testing.assert_allclose(profile.critical_set(), [0.5, 0.8, 1.0])

    def test_next_critical(self):
        profile = step_profile()
        assert profile.next_critical(0.1) == pytest.approx(0.5)
        assert profile.next_critical(0.5) == pytest.approx(0.5)
        assert profile.next_critical(0.51) == pytest.approx(0.8)
        assert profile.next_critical(0.95) == pytest.approx(1.0)
        assert profile.next_critical(1.0) == pytest.approx(1.0)

    def test_constant_until_alias(self):
        profile = step_profile()
        assert profile.constant_until(0.3) == profile.next_critical(0.3)

    def test_flat_profile_single_critical(self):
        profile = DistanceProfile([0.4, 1.0], [2.0, 2.0])
        np.testing.assert_allclose(profile.critical_set(), [1.0])


class TestSafeRanges:
    def test_max_level_with_distance_below(self):
        profile = step_profile()
        # starting at 0.1 (distance 1), threshold 5 -> levels 0.2, 0.5, 0.8 all
        # have distance < 5, so the answer is 0.8.
        assert profile.max_level_with_distance_below(5.0, 0.1) == pytest.approx(0.8)
        # threshold 2 -> only up to 0.5.
        assert profile.max_level_with_distance_below(2.0, 0.1) == pytest.approx(0.5)
        # threshold 10 -> the whole profile qualifies.
        assert profile.max_level_with_distance_below(10.0, 0.1) == pytest.approx(1.0)

    def test_returns_none_when_start_already_exceeds(self):
        profile = step_profile()
        assert profile.max_level_with_distance_below(1.0, 0.1) is None
        assert profile.max_level_with_distance_below(0.5, 0.9) is None


class TestRestrictionAndSteps:
    def test_restricted_preserves_values(self):
        profile = step_profile()
        restricted = profile.restricted(0.3, 0.7)
        for alpha in (0.3, 0.5, 0.6, 0.7):
            assert restricted.value(alpha) == profile.value(alpha)

    def test_restricted_invalid_range(self):
        with pytest.raises(InvalidQueryError):
            step_profile().restricted(0.8, 0.2)

    def test_steps_cover_domain(self):
        profile = step_profile()
        steps = profile.steps()
        assert steps[0][0] == 0.0
        assert steps[-1][1] == pytest.approx(1.0)
        # pieces are contiguous
        for (_, end, _), (start, _, _) in zip(steps, steps[1:]):
            assert end == pytest.approx(start)

    def test_equality_and_repr(self):
        assert step_profile() == step_profile()
        assert step_profile() != DistanceProfile.constant(1.0)
        assert "DistanceProfile" in repr(step_profile())
