"""Unit tests for the closed-interval algebra used by RKNN qualifying ranges."""

import pytest

from repro.fuzzy.intervals import Interval, IntervalSet


class TestInterval:
    def test_basic_properties(self):
        interval = Interval(0.2, 0.6)
        assert interval.length == pytest.approx(0.4)
        assert interval.contains(0.2)
        assert interval.contains(0.6)
        assert interval.contains(0.4)
        assert not interval.contains(0.7)

    def test_degenerate_interval(self):
        point = Interval(0.5, 0.5)
        assert point.length == 0.0
        assert point.contains(0.5)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Interval(0.7, 0.2)

    def test_overlaps(self):
        assert Interval(0.1, 0.5).overlaps(Interval(0.5, 0.9))
        assert Interval(0.1, 0.5).overlaps(Interval(0.3, 0.4))
        assert not Interval(0.1, 0.2).overlaps(Interval(0.5, 0.9))

    def test_merge(self):
        merged = Interval(0.1, 0.5).merge(Interval(0.4, 0.9))
        assert merged == Interval(0.1, 0.9)

    def test_intersect(self):
        assert Interval(0.1, 0.5).intersect(Interval(0.3, 0.9)) == Interval(0.3, 0.5)
        assert Interval(0.1, 0.2).intersect(Interval(0.5, 0.9)) is None

    def test_repr(self):
        assert "[" in repr(Interval(0.1, 0.2))


class TestIntervalSet:
    def test_empty(self):
        assert IntervalSet.empty().is_empty
        assert IntervalSet.empty().total_length == 0.0
        assert IntervalSet.empty().span is None

    def test_add_disjoint_keeps_both(self):
        ranges = IntervalSet()
        ranges.add_range(0.1, 0.2)
        ranges.add_range(0.5, 0.6)
        assert len(ranges) == 2
        assert ranges.total_length == pytest.approx(0.2)

    def test_add_overlapping_merges(self):
        ranges = IntervalSet()
        ranges.add_range(0.1, 0.4)
        ranges.add_range(0.3, 0.6)
        assert len(ranges) == 1
        assert ranges.intervals[0] == Interval(0.1, 0.6)

    def test_add_adjacent_merges(self):
        ranges = IntervalSet()
        ranges.add_range(0.1, 0.4)
        ranges.add_range(0.4, 0.6)
        assert len(ranges) == 1

    def test_chain_merge(self):
        """Adding an interval bridging two existing ones collapses all three."""
        ranges = IntervalSet.from_pairs([(0.1, 0.2), (0.5, 0.6)])
        ranges.add_range(0.2, 0.5)
        assert len(ranges) == 1
        assert ranges.intervals[0] == Interval(0.1, 0.6)

    def test_contains(self):
        ranges = IntervalSet.from_pairs([(0.1, 0.2), (0.5, 0.6)])
        assert ranges.contains(0.15)
        assert ranges.contains(0.5)
        assert not ranges.contains(0.35)

    def test_span(self):
        ranges = IntervalSet.from_pairs([(0.1, 0.2), (0.5, 0.6)])
        assert ranges.span == Interval(0.1, 0.6)

    def test_intersect(self):
        a = IntervalSet.from_pairs([(0.1, 0.4), (0.6, 0.9)])
        b = IntervalSet.from_pairs([(0.3, 0.7)])
        overlap = a.intersect(b)
        assert len(overlap) == 2
        assert overlap.intervals[0] == Interval(0.3, 0.4)
        assert overlap.intervals[1] == Interval(0.6, 0.7)

    def test_union(self):
        a = IntervalSet.from_pairs([(0.1, 0.3)])
        b = IntervalSet.from_pairs([(0.2, 0.5), (0.8, 0.9)])
        union = a.union(b)
        assert len(union) == 2
        assert union.total_length == pytest.approx(0.5)

    def test_clipped(self):
        ranges = IntervalSet.from_pairs([(0.1, 0.9)])
        clipped = ranges.clipped(0.3, 0.5)
        assert clipped.intervals[0] == Interval(0.3, 0.5)

    def test_copy_is_independent(self):
        a = IntervalSet.single(0.1, 0.2)
        b = a.copy()
        b.add_range(0.5, 0.6)
        assert len(a) == 1
        assert len(b) == 2

    def test_approx_equal(self):
        a = IntervalSet.from_pairs([(0.1, 0.2)])
        b = IntervalSet.from_pairs([(0.1 + 1e-12, 0.2 - 1e-12)])
        c = IntervalSet.from_pairs([(0.1, 0.3)])
        assert a.approx_equal(b)
        assert not a.approx_equal(c)
        assert not a.approx_equal(IntervalSet.empty())

    def test_iteration_sorted(self):
        ranges = IntervalSet.from_pairs([(0.7, 0.8), (0.1, 0.2), (0.4, 0.5)])
        starts = [interval.start for interval in ranges]
        assert starts == sorted(starts)

    def test_equality_and_repr(self):
        a = IntervalSet.from_pairs([(0.1, 0.2)])
        b = IntervalSet.from_pairs([(0.1, 0.2)])
        assert a == b
        assert "IntervalSet" in repr(a)
