"""Unit tests for the binary fuzzy-object codec."""

import numpy as np
import pytest

from repro.exceptions import SerializationError
from repro.storage.serialization import decode_object, encode_object, record_size
from tests.conftest import make_fuzzy_object


class TestRoundtrip:
    def test_roundtrip_preserves_everything(self, rng):
        obj = make_fuzzy_object(rng, object_id=3)
        clone = decode_object(encode_object(obj))
        assert clone.object_id == 3
        np.testing.assert_allclose(clone.points, obj.points)
        np.testing.assert_allclose(clone.memberships, obj.memberships)

    def test_roundtrip_without_id(self, rng):
        obj = make_fuzzy_object(rng)
        clone = decode_object(encode_object(obj))
        assert clone.object_id is None

    def test_roundtrip_high_dimensional(self, rng):
        points = rng.random((10, 5))
        memberships = np.linspace(0.1, 1.0, 10)
        from repro.fuzzy.fuzzy_object import FuzzyObject

        obj = FuzzyObject(points, memberships, object_id=9)
        clone = decode_object(encode_object(obj))
        assert clone.dimensions == 5
        np.testing.assert_allclose(clone.points, points)

    def test_record_size_matches_encoding(self, rng):
        obj = make_fuzzy_object(rng, n_points=17)
        assert len(encode_object(obj)) == record_size(obj)

    def test_decoded_arrays_are_writable_copies(self, rng):
        obj = make_fuzzy_object(rng)
        clone = decode_object(encode_object(obj))
        clone.points[0, 0] = 999.0  # must not raise (not a read-only buffer view)


class TestCorruptInput:
    def test_truncated_header(self):
        with pytest.raises(SerializationError):
            decode_object(b"FZ")

    def test_bad_magic(self, rng):
        payload = bytearray(encode_object(make_fuzzy_object(rng)))
        payload[:4] = b"XXXX"
        with pytest.raises(SerializationError):
            decode_object(bytes(payload))

    def test_bad_version(self, rng):
        payload = bytearray(encode_object(make_fuzzy_object(rng)))
        payload[4] = 99
        with pytest.raises(SerializationError):
            decode_object(bytes(payload))

    def test_truncated_body(self, rng):
        payload = encode_object(make_fuzzy_object(rng))
        with pytest.raises(SerializationError):
            decode_object(payload[:-8])
