"""Property-based tests for the interval algebra and distance profiles."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.fuzzy.intervals import Interval, IntervalSet
from repro.fuzzy.profile import DistanceProfile

SETTINGS = dict(max_examples=60, deadline=None)

interval_pairs = st.tuples(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
).map(lambda pair: (min(pair), max(pair)))


class TestIntervalSetProperties:
    @given(pairs=st.lists(interval_pairs, min_size=0, max_size=12))
    @settings(**SETTINGS)
    def test_intervals_stay_disjoint_and_sorted(self, pairs):
        ranges = IntervalSet.from_pairs(pairs)
        intervals = ranges.intervals
        for a, b in zip(intervals, intervals[1:]):
            assert a.end < b.start  # strictly disjoint after normalisation
        starts = [iv.start for iv in intervals]
        assert starts == sorted(starts)

    @given(pairs=st.lists(interval_pairs, min_size=0, max_size=10), value=st.floats(0, 1))
    @settings(**SETTINGS)
    def test_contains_matches_membership_in_some_input(self, pairs, value):
        ranges = IntervalSet.from_pairs(pairs)
        expected = any(lo - 1e-12 <= value <= hi + 1e-12 for lo, hi in pairs)
        assert ranges.contains(value) == expected

    @given(pairs=st.lists(interval_pairs, min_size=1, max_size=10))
    @settings(**SETTINGS)
    def test_total_length_does_not_exceed_span(self, pairs):
        ranges = IntervalSet.from_pairs(pairs)
        assert ranges.total_length <= ranges.span.length + 1e-9

    @given(
        a=st.lists(interval_pairs, min_size=0, max_size=6),
        b=st.lists(interval_pairs, min_size=0, max_size=6),
        value=st.floats(0, 1),
    )
    @settings(**SETTINGS)
    def test_union_and_intersection_pointwise(self, a, b, value):
        set_a = IntervalSet.from_pairs(a)
        set_b = IntervalSet.from_pairs(b)
        in_a = set_a.contains(value)
        in_b = set_b.contains(value)
        union = set_a.union(set_b)
        intersection = set_a.intersect(set_b)
        if in_a or in_b:
            assert union.contains(value)
        if in_a and in_b:
            assert intersection.contains(value)
        # intersection never contains a value missing from either operand
        # (allow boundary tolerance used by the implementation)
        if not in_a and not in_b:
            assert not intersection.contains(value)

    @given(pairs=st.lists(interval_pairs, min_size=0, max_size=8))
    @settings(**SETTINGS)
    def test_adding_in_any_order_is_equivalent(self, pairs):
        forward = IntervalSet.from_pairs(pairs)
        backward = IntervalSet.from_pairs(list(reversed(pairs)))
        assert forward.approx_equal(backward)


@st.composite
def step_profiles(draw):
    """Random valid distance profiles (sorted levels, non-decreasing distances)."""
    n_levels = draw(st.integers(min_value=1, max_value=8))
    levels = sorted(
        set(
            draw(
                st.lists(
                    st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
                    min_size=n_levels,
                    max_size=n_levels,
                )
            )
        )
    )
    if not levels:
        levels = [1.0]
    if levels[-1] < 1.0:
        levels.append(1.0)
    base = draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    steps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
            min_size=len(levels),
            max_size=len(levels),
        )
    )
    distances = base + np.cumsum(steps)
    return DistanceProfile(levels, distances)


class TestProfileProperties:
    @given(profile=step_profiles(), alpha=st.floats(min_value=0.01, max_value=1.0))
    @settings(**SETTINGS)
    def test_value_is_monotone(self, profile, alpha):
        assert profile.value(alpha) <= profile.value(1.0) + 1e-9
        assert profile.value(alpha) >= profile.value(profile.levels[0]) - 1e-9

    @given(profile=step_profiles(), alpha=st.floats(min_value=0.01, max_value=1.0))
    @settings(**SETTINGS)
    def test_next_critical_at_least_alpha_when_below_last(self, profile, alpha):
        critical = profile.next_critical(alpha)
        assert critical in profile.critical_set()
        if alpha <= profile.levels[-1]:
            assert critical >= min(alpha, float(profile.critical_set()[-1])) - 1e-9

    @given(profile=step_profiles())
    @settings(**SETTINGS)
    def test_critical_set_distances_strictly_increase(self, profile):
        critical = profile.critical_set()
        values = [profile.value(c) for c in critical]
        assert all(v2 >= v1 - 1e-12 for v1, v2 in zip(values, values[1:]))

    @given(profile=step_profiles(), threshold=st.floats(min_value=0.0, max_value=40.0))
    @settings(**SETTINGS)
    def test_safe_range_values_stay_below_threshold(self, profile, threshold):
        start = float(profile.levels[0])
        beta = profile.max_level_with_distance_below(threshold, start)
        if beta is None:
            assert profile.value(start) >= threshold
        else:
            assert profile.value(beta) < threshold
