"""Unit tests for the closest-pair / point-set distance kernels."""

import numpy as np
import pytest

from repro.geometry.distance import (
    closest_pair,
    closest_pair_distance,
    point_to_set_distance,
    set_to_set_distances,
)


def brute_force_closest(a, b):
    diff = a[:, None, :] - b[None, :, :]
    d = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    idx = np.unravel_index(np.argmin(d), d.shape)
    return d[idx], idx[0], idx[1]


class TestPointToSet:
    def test_simple(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        assert point_to_set_distance([0.0, 1.0], points) == pytest.approx(1.0)

    def test_zero_when_point_in_set(self):
        points = np.array([[1.0, 1.0], [2.0, 2.0]])
        assert point_to_set_distance([2.0, 2.0], points) == 0.0

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            point_to_set_distance([0.0, 0.0, 0.0], np.array([[1.0, 1.0]]))

    def test_empty_set_raises(self):
        with pytest.raises(ValueError):
            point_to_set_distance([0.0, 0.0], np.empty((0, 2)))


class TestSetToSet:
    def test_matrix_shape_and_values(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 1.0], [0.0, 2.0], [5.0, 0.0]])
        matrix = set_to_set_distances(a, b)
        assert matrix.shape == (2, 3)
        assert matrix[0, 0] == pytest.approx(1.0)
        assert matrix[1, 2] == pytest.approx(4.0)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            set_to_set_distances(np.zeros((2, 2)), np.zeros((2, 3)))


class TestClosestPair:
    def test_known_configuration(self):
        a = np.array([[0.0, 0.0], [10.0, 10.0]])
        b = np.array([[0.0, 3.0], [20.0, 20.0]])
        distance, i, j = closest_pair(a, b)
        assert distance == pytest.approx(3.0)
        assert (i, j) == (0, 0)

    def test_identical_point_gives_zero(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[9.0, 9.0], [3.0, 4.0]])
        assert closest_pair_distance(a, b) == 0.0

    def test_single_points(self):
        assert closest_pair_distance(
            np.array([[0.0, 0.0]]), np.array([[3.0, 4.0]])
        ) == pytest.approx(5.0)

    def test_brute_and_kdtree_paths_agree(self, rng):
        # Force both code paths on the same (large enough) input.
        a = rng.random((300, 2)) * 10
        b = rng.random((300, 2)) * 10 + 5
        with_tree = closest_pair_distance(a, b, use_kdtree=True)
        without_tree = closest_pair_distance(a, b, use_kdtree=False)
        assert with_tree == pytest.approx(without_tree)

    def test_matches_brute_force_reference(self, rng):
        for _ in range(10):
            a = rng.random((25, 3)) * 4
            b = rng.random((30, 3)) * 4 + 1
            expected, _, _ = brute_force_closest(a, b)
            assert closest_pair_distance(a, b) == pytest.approx(expected)

    def test_returned_indices_realise_the_distance(self, rng):
        a = rng.random((40, 2))
        b = rng.random((35, 2)) + 0.5
        distance, i, j = closest_pair(a, b)
        assert np.linalg.norm(a[i] - b[j]) == pytest.approx(distance)

    def test_kdtree_path_indices(self, rng):
        a = rng.random((400, 2))
        b = rng.random((500, 2)) + 0.2
        distance, i, j = closest_pair(a, b, use_kdtree=True)
        assert np.linalg.norm(a[i] - b[j]) == pytest.approx(distance)
        expected, _, _ = brute_force_closest(a, b)
        assert distance == pytest.approx(expected)

    def test_one_dimensional_input_reshaped(self):
        assert closest_pair_distance(
            np.array([0.0, 0.0]), np.array([1.0, 0.0])
        ) == pytest.approx(1.0)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            closest_pair_distance(np.zeros((3, 2)), np.zeros((3, 4)))

    def test_symmetry(self, rng):
        a = rng.random((20, 2))
        b = rng.random((15, 2)) + 1
        assert closest_pair_distance(a, b) == pytest.approx(closest_pair_distance(b, a))
