"""Tests for the alpha range searcher against the linear-scan baseline."""

import pytest

from repro.core.query import PreparedQuery
from repro.core.range_search import AlphaRangeSearcher
from repro.exceptions import InvalidQueryError


class TestCorrectness:
    @pytest.mark.parametrize("alpha", [0.3, 0.6, 1.0])
    @pytest.mark.parametrize("radius", [0.0, 0.5, 1.5, 4.0])
    def test_matches_linear_scan(self, dense_database, dense_queries, alpha, radius):
        query = dense_queries[0]
        expected = dense_database.linear_scan().range_search(query, alpha, radius)
        actual = dense_database.range_search(query, alpha, radius)
        assert sorted(actual.object_ids) == sorted(expected.object_ids)
        expected_distances = dict(expected.matches)
        for object_id, distance in actual.matches:
            assert distance == pytest.approx(expected_distances[object_id])

    def test_simple_bounds_variant_agrees(self, dense_database, dense_queries):
        query = dense_queries[1]
        searcher = AlphaRangeSearcher(dense_database.store, dense_database.tree)
        improved = searcher.search(query, 0.5, 2.0, use_improved_bounds=True)
        simple = searcher.search(query, 0.5, 2.0, use_improved_bounds=False)
        assert sorted(improved.object_ids) == sorted(simple.object_ids)

    def test_huge_radius_returns_everything(self, dense_database, dense_queries):
        result = dense_database.range_search(dense_queries[0], 0.5, 1e6)
        assert len(result) == len(dense_database)

    def test_negative_radius_rejected(self, dense_database, dense_queries):
        with pytest.raises(InvalidQueryError):
            dense_database.range_search(dense_queries[0], 0.5, -0.1)


class TestCollect:
    def test_collect_returns_probed_objects(self, dense_database, dense_queries):
        query = dense_queries[0]
        searcher = AlphaRangeSearcher(dense_database.store, dense_database.tree)
        prepared = PreparedQuery(query, 0.5)
        matches, objects = searcher.collect(prepared, radius=2.0)
        assert set(objects.keys()) >= {object_id for object_id, _ in matches}
        for object_id, _ in matches:
            assert objects[object_id].object_id == object_id

    def test_matches_sorted_by_distance(self, dense_database, dense_queries):
        result = dense_database.range_search(dense_queries[0], 0.5, 3.0)
        distances = [d for _, d in result.matches]
        assert distances == sorted(distances)

    def test_stats(self, dense_database, dense_queries):
        dense_database.reset_statistics()
        result = dense_database.range_search(dense_queries[0], 0.5, 1.0)
        assert result.stats.range_calls == 1
        assert result.stats.object_accesses == dense_database.object_accesses
        assert result.stats.node_accesses >= 1

    def test_empty_tree(self):
        from repro.core.database import FuzzyDatabase
        from repro.fuzzy.fuzzy_object import FuzzyObject

        database = FuzzyDatabase.build([])
        result = database.range_search(FuzzyObject.single_point([0.0, 0.0]), 0.5, 10.0)
        assert len(result) == 0
