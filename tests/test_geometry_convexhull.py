"""Unit tests for the monotone-chain convex hull / upper hull."""

import numpy as np
import pytest

from repro.geometry.convexhull import convex_hull, is_right_turn_chain, upper_convex_hull


class TestConvexHull:
    def test_square(self):
        points = [(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)]
        hull = convex_hull(points)
        assert set(hull) == {(0, 0), (1, 0), (1, 1), (0, 1)}

    def test_collinear_points(self):
        points = [(0, 0), (1, 1), (2, 2), (3, 3)]
        hull = convex_hull(points)
        assert set(hull) == {(0, 0), (3, 3)}

    def test_duplicate_points_removed(self):
        hull = convex_hull([(0, 0), (0, 0), (1, 0), (1, 1)])
        assert set(hull) == {(0, 0), (1, 0), (1, 1)}

    def test_single_and_pair(self):
        assert convex_hull([(1, 2)]) == [(1.0, 2.0)]
        assert convex_hull([(1, 2), (0, 0)]) == [(0.0, 0.0), (1.0, 2.0)]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            convex_hull([])

    def test_random_points_inside_hull(self, rng):
        points = [tuple(p) for p in rng.random((60, 2))]
        hull = convex_hull(points)
        # every hull vertex is an input point
        assert set(hull) <= {(float(x), float(y)) for x, y in points}
        # the hull of the hull is the hull (idempotence)
        assert set(convex_hull(hull)) == set(hull)


class TestUpperConvexHull:
    def test_simple_decreasing_curve(self):
        # A concave-down decreasing sequence keeps every point.
        points = [(0.0, 1.0), (0.5, 0.9), (1.0, 0.0)]
        hull = upper_convex_hull(points)
        assert hull[0] == (0.0, 1.0)
        assert hull[-1] == (1.0, 0.0)
        assert is_right_turn_chain(hull)

    def test_points_below_chain(self, rng):
        xs = np.sort(rng.random(30))
        ys = rng.random(30)
        pairs = list(zip(xs, ys))
        hull = upper_convex_hull(pairs)
        assert is_right_turn_chain(hull)
        # every input point lies on or below the chain
        hx = np.array([p[0] for p in hull])
        hy = np.array([p[1] for p in hull])
        for x, y in pairs:
            y_chain = np.interp(x, hx, hy)
            assert y <= y_chain + 1e-9

    def test_spans_x_extremes(self, rng):
        pairs = [(float(x), float(y)) for x, y in rng.random((20, 2))]
        hull = upper_convex_hull(pairs)
        xs = sorted(p[0] for p in pairs)
        assert hull[0][0] == pytest.approx(xs[0])
        assert hull[-1][0] == pytest.approx(xs[-1])

    def test_is_right_turn_chain_detects_violation(self):
        assert is_right_turn_chain([(0, 0), (1, 1), (2, 0)])
        assert not is_right_turn_chain([(0, 0), (1, -1), (2, 0)])

    def test_two_points(self):
        assert upper_convex_hull([(0, 0), (1, 5)]) == [(0.0, 0.0), (1.0, 5.0)]
