"""Tests for the FuzzyDatabase facade: build, query, persist, reopen."""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.database import FuzzyDatabase
from repro.exceptions import StorageError
from tests.conftest import assert_same_assignments, make_fuzzy_object


@pytest.fixture
def objects(rng):
    return [
        make_fuzzy_object(rng, n_points=20, center=rng.random(2) * 10, object_id=i)
        for i in range(25)
    ]


class TestBuild:
    def test_build_in_memory(self, objects):
        database = FuzzyDatabase.build(objects)
        assert len(database) == len(objects)
        database.validate()
        assert database.object_ids() == list(range(len(objects)))

    def test_build_on_disk(self, objects, tmp_path):
        database = FuzzyDatabase.build(objects, path=tmp_path / "db")
        assert (tmp_path / "db" / "objects.dat").exists()
        database.validate()
        database.close()

    def test_build_assigns_missing_ids(self, rng):
        anonymous = [make_fuzzy_object(rng) for _ in range(5)]
        database = FuzzyDatabase.build(anonymous)
        assert database.object_ids() == [0, 1, 2, 3, 4]

    def test_from_store(self, objects):
        from repro.storage.object_store import ObjectStore

        store = ObjectStore.build(objects)
        database = FuzzyDatabase.from_store(store)
        database.validate()
        # Offline summary construction must not count as query-time accesses.
        assert database.object_accesses == 0

    def test_get_object(self, objects):
        database = FuzzyDatabase.build(objects)
        obj = database.get_object(3)
        assert obj.object_id == 3
        assert database.object_accesses == 1

    def test_context_manager(self, objects, tmp_path):
        with FuzzyDatabase.build(objects, path=tmp_path / "db") as database:
            assert len(database) == len(objects)
        with pytest.raises(StorageError):
            database.get_object(0)

    def test_custom_config(self, objects):
        config = RuntimeConfig(rtree_max_entries=4, upper_bound_samples=2)
        database = FuzzyDatabase.build(objects, config=config)
        database.validate()
        assert database.tree.max_entries == 4


class TestQueries:
    def test_aknn_and_rknn_available(self, objects, rng):
        database = FuzzyDatabase.build(objects)
        query = make_fuzzy_object(rng, center=[5.0, 5.0])
        aknn = database.aknn(query, k=4, alpha=0.5)
        assert len(aknn) == 4
        rknn = database.rknn(query, k=4, alpha_range=(0.3, 0.6))
        truth = database.linear_scan().rknn(query, k=4, alpha_range=(0.3, 0.6))
        assert_same_assignments(rknn.assignments, truth.assignments)

    def test_reset_statistics(self, objects, rng):
        database = FuzzyDatabase.build(objects)
        query = make_fuzzy_object(rng, center=[5.0, 5.0])
        database.aknn(query, k=3, alpha=0.5, method="basic")
        assert database.object_accesses > 0
        database.reset_statistics()
        assert database.object_accesses == 0


class TestPersistence:
    def test_save_and_open_roundtrip(self, objects, rng, tmp_path):
        path = tmp_path / "db"
        database = FuzzyDatabase.build(objects, path=path)
        database.save(path)
        query = make_fuzzy_object(rng, center=[5.0, 5.0])
        expected = database.aknn(query, k=5, alpha=0.5, method="lb")
        expected_ids = sorted(expected.object_ids)
        database.close()

        reopened = FuzzyDatabase.open(path)
        reopened.validate()
        assert len(reopened) == len(objects)
        result = reopened.aknn(query, k=5, alpha=0.5, method="lb")
        assert sorted(result.object_ids) == expected_ids
        reopened.close()

    def test_open_missing_raises(self, tmp_path):
        with pytest.raises(StorageError):
            FuzzyDatabase.open(tmp_path / "nowhere")

    def test_open_with_explicit_config(self, objects, tmp_path):
        path = tmp_path / "db"
        database = FuzzyDatabase.build(objects, path=path)
        database.save(path)
        database.close()
        reopened = FuzzyDatabase.open(path, config=RuntimeConfig(rtree_max_entries=6))
        assert reopened.tree.max_entries == 6
        reopened.close()

    def test_saved_config_restored(self, objects, tmp_path):
        path = tmp_path / "db"
        database = FuzzyDatabase.build(
            objects, path=path, config=RuntimeConfig(rtree_max_entries=8)
        )
        database.save(path)
        database.close()
        reopened = FuzzyDatabase.open(path)
        assert reopened.config.rtree_max_entries == 8
        reopened.close()

    def test_validate_detects_store_index_mismatch(self, objects):
        database = FuzzyDatabase.build(objects)
        database.tree._size -= 1
        with pytest.raises(Exception):
            database.validate()


class TestRoundTripUnderCustomConfig:
    def test_save_open_parity_with_non_default_runtime_config(
        self, objects, rng, tmp_path
    ):
        """Queries must agree before save and after reopen when the runtime
        config is non-default (cache capacities, batch workers, fan-out)."""
        config = RuntimeConfig(
            rtree_max_entries=8,
            cache_capacity=16,
            alpha_cut_cache_capacity=4,
            profile_cache_capacity=32,
            batch_workers=2,
            upper_bound_samples=4,
        )
        database = FuzzyDatabase.build(objects, path=tmp_path / "db", config=config)
        database.save(tmp_path / "db")
        query = make_fuzzy_object(rng, center=[5.0, 5.0])
        queries = [make_fuzzy_object(rng, center=rng.random(2) * 10) for _ in range(5)]

        before_aknn = database.aknn(query, k=6, alpha=0.5)
        before_batch = database.aknn_batch(queries, k=4, alpha=0.5)
        before_rknn = database.rknn(query, k=4, alpha_range=(0.3, 0.6))
        database.close()

        reopened = FuzzyDatabase.open(tmp_path / "db", config=config)
        assert reopened.config.cache_capacity == 16
        assert reopened.config.alpha_cut_cache_capacity == 4
        assert reopened.config.batch_workers == 2
        reopened.validate()

        after_aknn = reopened.aknn(query, k=6, alpha=0.5)
        assert set(after_aknn.object_ids) == set(before_aknn.object_ids)
        after_batch = reopened.aknn_batch(queries, k=4, alpha=0.5)
        for before, after in zip(before_batch.results, after_batch.results):
            assert before.object_ids == after.object_ids
        after_rknn = reopened.rknn(query, k=4, alpha_range=(0.3, 0.6))
        assert_same_assignments(after_rknn.assignments, before_rknn.assignments)
        # The buffer pool is live after reopen: repeated probes hit it.
        reopened.reset_statistics()
        reopened.get_object(0)
        reopened.get_object(0)
        assert reopened.store.statistics.cache_hits >= 1
        reopened.close()

    def test_saved_default_config_roundtrip_still_queries(self, objects, tmp_path, rng):
        database = FuzzyDatabase.build(objects, path=tmp_path / "plain")
        database.save(tmp_path / "plain")
        database.close()
        reopened = FuzzyDatabase.open(tmp_path / "plain")
        result = reopened.aknn(make_fuzzy_object(rng, center=[5.0, 5.0]), k=3, alpha=0.5)
        assert len(result) == 3
        reopened.close()

    def test_deleted_ids_stay_retired_across_reopen(self, objects, rng, tmp_path):
        """The never-recycle-ids guarantee must survive save/open."""
        database = FuzzyDatabase.build(objects, path=tmp_path / "wm")
        highest = max(database.object_ids())
        database.delete(highest)
        database.save(tmp_path / "wm")
        database.close()
        reopened = FuzzyDatabase.open(tmp_path / "wm")
        new_id = reopened.insert(make_fuzzy_object(rng))
        assert new_id == highest + 1
        reopened.close()
