"""Chaos suite for the fault-tolerant serving layer.

Covers the failure-semantics contract end to end:

* the policy primitives (Deadline, RetryPolicy, CircuitBreaker);
* FaultSpec / FaultPlan parsing and trigger accounting;
* partial-result parity — under an injected permanent single-shard failure,
  every query kind returns exactly what a fresh database built from only the
  surviving shards' objects would return, with coverage naming the dead shard;
* the acceptance scenario — a 64-request mixed service batch over a dead
  shard yields 64 partial results, zero hung futures, an open breaker, and
  instant shedding afterwards; ``require_full`` flips the same workload to
  fail-closed with a retry-after hint;
* deadline propagation (expired before execution, expired in queue, expired
  mid-execution under a delay fault);
* the ``stop()`` audit — no submitted future may ever hang;
* delete-vs-query churn (races report ObjectNotFoundError, never KeyError);
* RetryingClient honouring the retry-after backpressure contract.
"""

import threading
import time

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.database import FuzzyDatabase
from repro.core.requests import (
    AknnRequest,
    RangeRequest,
    ReverseRequest,
    SweepRequest,
)
from repro.datasets.builder import build_dataset
from repro.datasets.queries import generate_query_object
from repro.exceptions import (
    DeadlineExceededError,
    FaultInjectedError,
    InvalidQueryError,
    ObjectNotFoundError,
    ServiceOverloadedError,
    ServiceStoppedError,
    ShardUnavailableError,
)
from repro.metrics.counters import MetricsCollector
from repro.service import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    FaultPlan,
    FaultSpec,
    QueryService,
    RetryBudgetExhaustedError,
    RetryPolicy,
    RetryingClient,
    ShardedDatabase,
)
from repro.service import query_service as query_service_module
from tests.conftest import assert_same_assignments

DEAD = 1  # the shard every permanent-failure scenario kills


@pytest.fixture(scope="module")
def objects():
    return build_dataset(
        kind="synthetic", n_objects=48, points_per_object=12, seed=77, space_size=8.0
    )


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(505)
    return [
        generate_query_object(rng, kind="synthetic", space_size=8.0, points_per_object=12)
        for _ in range(3)
    ]


def chaos_config(**overrides):
    """A config with fast retries so injected failures resolve in microseconds."""
    base = dict(
        rtree_max_entries=8,
        cache_capacity=32,
        shard_retry_attempts=2,
        shard_retry_base_ms=0.1,
        shard_retry_max_ms=0.5,
        breaker_failure_threshold=1000,  # parity tests exercise retry exhaustion
        breaker_reset_timeout_ms=60_000.0,
    )
    base.update(overrides)
    return RuntimeConfig(**base)


def build_dead_shard_pair(objects, config=None, plan="shard=%d,kind=raise" % DEAD):
    """A 3-shard database with one permanently dead shard, plus the reference
    database holding only the surviving shards' objects."""
    config = config or chaos_config()
    sharded = ShardedDatabase.build(
        list(objects), n_shards=3, placement="hash", config=config
    )
    survivors = [
        sharded.get_object(object_id)
        for shard in sharded._shards
        if shard.index != DEAD
        for object_id in shard.db.object_ids()
    ]
    reference = FuzzyDatabase.build(survivors, config=config)
    sharded.fault_plan = FaultPlan.parse(plan)
    return sharded, reference


def assert_partial_coverage(result):
    coverage = result.coverage
    assert coverage is not None
    assert not coverage.complete
    assert DEAD in coverage.failed
    assert DEAD not in coverage.answered
    assert coverage.total_shards == 3
    assert coverage.reason_for(DEAD) is not None


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def now(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


# ---------------------------------------------------------------------------
# Policy primitives
# ---------------------------------------------------------------------------
class TestDeadline:
    def test_after_ms_and_remaining(self):
        deadline = Deadline.after_ms(50.0)
        assert not deadline.expired()
        assert 0.0 < deadline.remaining_ms() <= 50.0
        deadline.check("unit")  # does not raise while live

    def test_expired_check_raises(self):
        deadline = Deadline(time.monotonic() - 0.01)
        assert deadline.expired()
        assert deadline.remaining_ms() < 0.0
        with pytest.raises(DeadlineExceededError, match="unit deadline exceeded"):
            deadline.check("unit")

    def test_earliest_picks_tightest_and_ignores_none(self):
        near = Deadline(time.monotonic() + 0.1)
        far = Deadline(time.monotonic() + 10.0)
        assert Deadline.earliest(far, None, near) is near
        assert Deadline.earliest(None, None) is None


class TestRetryPolicy:
    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_ms=10, max_delay_ms=35, multiplier=2, jitter=0.0
        )
        delays = [policy.delay_seconds(i) * 1000.0 for i in range(4)]
        assert delays == [10.0, 20.0, 35.0, 35.0]

    def test_jitter_scales_within_bounds(self):
        policy = RetryPolicy(base_delay_ms=100, max_delay_ms=100, jitter=0.5)
        assert policy.delay_seconds(0, rand=lambda: 0.0) * 1000.0 == 100.0
        assert policy.delay_seconds(0, rand=lambda: 1.0) * 1000.0 == 50.0

    def test_from_config_and_validation(self):
        policy = RetryPolicy.from_config(chaos_config(shard_retry_attempts=4))
        assert policy.max_attempts == 4
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout_ms=100, clock=clock.now
        )
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.state is BreakerState.CLOSED
        assert breaker.record_failure() is True  # this one opened it
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.shedding()
        assert 0.0 < breaker.retry_after_ms() <= 100.0

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        assert breaker.record_failure() is False
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_ms=100, half_open_probes=1,
            clock=clock.now,
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(0.2)  # cool-off elapsed
        assert not breaker.shedding()
        assert breaker.allow()  # the probe slot
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow()  # only one probe admitted
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens_for_full_cooloff(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_ms=100, clock=clock.now
        )
        breaker.record_failure()
        clock.advance(0.2)
        assert breaker.allow()
        assert breaker.record_failure() is True  # re-opened
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.retry_after_ms() == pytest.approx(100.0)


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = FaultPlan.parse(
            "shard=1,kind=raise; shard=0,op=aknn_batch,kind=delay,delay_ms=5,after=2,count=3"
        )
        assert len(plan.specs) == 2
        first, second = plan.specs
        assert (first.shard, first.kind, first.count) == (1, "raise", None)
        assert (second.op, second.after, second.count, second.delay_ms) == (
            "aknn_batch", 2, 3, 5.0,
        )

    def test_parse_rejects_garbage(self):
        with pytest.raises(InvalidQueryError):
            FaultPlan.parse("")
        with pytest.raises(InvalidQueryError):
            FaultPlan.parse("shard1kindraise")
        with pytest.raises(InvalidQueryError):
            FaultPlan.parse("bogus_key=1")
        with pytest.raises(InvalidQueryError):
            FaultSpec(kind="explode")
        with pytest.raises(InvalidQueryError):
            FaultSpec(op="no_such_op")
        with pytest.raises(InvalidQueryError):
            FaultSpec(count=0)

    def test_after_and_count_window(self):
        plan = FaultPlan.parse("shard=0,kind=raise,after=1,count=2")
        plan.invoke(0, "aknn")  # call 0: skipped by `after`
        with pytest.raises(FaultInjectedError):
            plan.invoke(0, "aknn")  # call 1: armed
        with pytest.raises(FaultInjectedError):
            plan.invoke(0, "aknn")  # call 2: armed
        plan.invoke(0, "aknn")  # call 3: rule exhausted
        plan.invoke(1, "aknn")  # different shard never matched
        assert plan.total_fired() == 2

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(
            [FaultSpec(kind="delay", delay_ms=0.0, shard=0), FaultSpec(kind="raise")]
        )
        plan.invoke(0, "range")  # delay rule absorbs the call
        with pytest.raises(FaultInjectedError):
            plan.invoke(1, "range")  # falls through to the raise rule
        assert plan.fired == [1, 1]

    def test_random_plans_are_transient_and_seeded(self):
        rng = np.random.default_rng(9)
        plan = FaultPlan.random(rng, n_shards=3, n_rules=5)
        assert len(plan.specs) == 5
        for spec in plan.specs:
            assert spec.count is not None  # transient: retries eventually win
            assert spec.kind in ("raise", "delay")
            assert 0 <= spec.shard < 3
        again = FaultPlan.random(np.random.default_rng(9), n_shards=3, n_rules=5)
        assert [s.shard for s in again.specs] == [s.shard for s in plan.specs]


# ---------------------------------------------------------------------------
# Partial-result parity under a dead shard
# ---------------------------------------------------------------------------
class TestPartialParity:
    """Surviving shards' answers must equal a fresh query against a database
    holding only the surviving shards' objects."""

    @pytest.fixture(scope="class")
    def dead_pair(self, objects):
        sharded, reference = build_dead_shard_pair(objects)
        yield sharded, reference
        sharded.close()
        reference.close()

    def test_aknn_single(self, dead_pair, queries):
        sharded, reference = dead_pair
        for query in queries:
            got = sharded.execute(AknnRequest(query, k=5, alpha=0.5))
            want = reference.execute(AknnRequest(query, k=5, alpha=0.5))
            assert_partial_coverage(got)
            assert set(got.object_ids) == set(want.object_ids)

    def test_aknn_batch(self, dead_pair, queries):
        sharded, reference = dead_pair
        requests = [AknnRequest(q, k=4, alpha=0.6) for q in queries]
        got = sharded.execute_batch(requests)
        want = reference.execute_batch(requests)
        for got_one, want_one in zip(got, want):
            assert_partial_coverage(got_one)
            assert set(got_one.object_ids) == set(want_one.object_ids)

    def test_range(self, dead_pair, queries):
        sharded, reference = dead_pair
        request = RangeRequest(queries[0], alpha=0.5, radius=3.0)
        got = sharded.execute(request)
        want = reference.execute(request)
        assert_partial_coverage(got)
        assert sorted(got.matches) == pytest.approx(sorted(want.matches))

    def test_sweep(self, dead_pair, queries):
        sharded, reference = dead_pair
        request = SweepRequest(queries[0], k=3, alpha_range=(0.45, 0.6))
        got = sharded.execute(request)
        want = reference.execute(request)
        assert_partial_coverage(got)
        assert_same_assignments(got.assignments, want.assignments)

    def test_reverse(self, dead_pair, queries):
        sharded, reference = dead_pair
        rng = np.random.default_rng(3)
        request = ReverseRequest(queries[1], k=3, alpha=0.5)
        got = sharded.execute(request, rng=rng)
        want = reference.execute(request, rng=np.random.default_rng(3))
        assert_partial_coverage(got)
        assert set(got.object_ids) == set(want.object_ids)
        for object_id, distance in got.distances.items():
            assert distance == pytest.approx(want.distances[object_id])

    def test_retries_recover_transient_faults_completely(self, objects, queries):
        """A fault bounded below the retry budget never surfaces at all."""
        config = chaos_config(shard_retry_attempts=3)
        sharded = ShardedDatabase.build(
            list(objects), n_shards=3, placement="hash", config=config
        )
        try:
            sharded.fault_plan = FaultPlan.parse("shard=0,kind=raise,count=2")
            result = sharded.execute(AknnRequest(queries[0], k=5, alpha=0.5))
            assert result.coverage is not None and result.coverage.complete
            assert sharded.fault_plan.total_fired() == 2
            assert sharded.metrics.as_dict()[MetricsCollector.RETRIES] >= 2
        finally:
            sharded.close()


# ---------------------------------------------------------------------------
# The acceptance scenario: dead shard + mixed service batch
# ---------------------------------------------------------------------------
class TestFailureIsolation:
    @pytest.fixture(scope="class")
    def dead_service_pair(self, objects):
        config = chaos_config(
            shard_retry_attempts=2, breaker_failure_threshold=2,
        )
        sharded, reference = build_dead_shard_pair(objects, config=config)
        yield sharded, reference
        sharded.close()
        reference.close()

    def mixed_requests(self, queries, n=64):
        requests = []
        for i in range(n):
            query = queries[i % len(queries)]
            kind = i % 16
            if kind < 8:
                requests.append(AknnRequest(query, k=2 + i % 3, alpha=0.5))
            elif kind < 12:
                requests.append(RangeRequest(query, alpha=0.5, radius=2.0 + i % 2))
            elif kind < 15:
                requests.append(ReverseRequest(query, k=2, alpha=0.5))
            else:
                requests.append(SweepRequest(query, k=2, alpha_range=(0.45, 0.55)))
        return requests

    def test_mixed_batch_returns_64_partial_results(
        self, dead_service_pair, queries
    ):
        sharded, _ = dead_service_pair
        requests = self.mixed_requests(queries, n=64)
        with QueryService(sharded, window_ms=1.0, max_batch=32) as service:
            futures = [service.submit_request(r) for r in requests]
            results = [f.result(timeout=60.0) for f in futures]  # zero hung futures
        assert len(results) == 64
        for result in results:
            assert_partial_coverage(result)
        # The permanent failure tripped the breaker and was counted.
        assert sharded._shards[DEAD].breaker.state is BreakerState.OPEN
        counters = sharded.metrics.as_dict()
        assert counters[MetricsCollector.BREAKER_OPEN] >= 1
        assert counters[MetricsCollector.RETRIES] >= 1
        assert counters[MetricsCollector.PARTIAL_RESULTS] >= 64

    def test_open_breaker_sheds_without_touching_the_shard(
        self, dead_service_pair, queries
    ):
        sharded, reference = dead_service_pair
        assert sharded._shards[DEAD].breaker.state is BreakerState.OPEN
        fired_before = sharded.fault_plan.total_fired()
        shed_before = sharded.metrics.as_dict().get(MetricsCollector.BREAKER_SHED, 0)
        got = sharded.execute(AknnRequest(queries[0], k=5, alpha=0.5))
        # Shed at admission: the dead shard was never invoked, no retry burned.
        assert sharded.fault_plan.total_fired() == fired_before
        assert sharded.metrics.as_dict()[MetricsCollector.BREAKER_SHED] > shed_before
        assert got.coverage.reason_for(DEAD) == "circuit breaker open"
        want = reference.execute(AknnRequest(queries[0], k=5, alpha=0.5))
        assert set(got.object_ids) == set(want.object_ids)

    def test_require_full_fails_closed_with_retry_after(
        self, dead_service_pair, queries
    ):
        sharded, _ = dead_service_pair
        with pytest.raises(ShardUnavailableError) as excinfo:
            sharded.execute(AknnRequest(queries[0], k=5, alpha=0.5, require_full=True))
        error = excinfo.value
        assert DEAD in error.shards
        assert error.retry_after_ms is not None and error.retry_after_ms > 0.0

    def test_require_full_through_the_service(self, dead_service_pair, queries):
        sharded, _ = dead_service_pair
        with QueryService(sharded, window_ms=1.0) as service:
            future = service.submit_request(
                RangeRequest(queries[0], alpha=0.5, radius=2.0, require_full=True)
            )
            with pytest.raises(ShardUnavailableError):
                future.result(timeout=30.0)

    def test_all_shards_dead_raises_even_when_partials_allowed(self, objects, queries):
        sharded = ShardedDatabase.build(
            list(objects), n_shards=2, placement="hash", config=chaos_config()
        )
        try:
            sharded.fault_plan = FaultPlan.parse("kind=raise")
            with pytest.raises(ShardUnavailableError) as excinfo:
                sharded.execute(AknnRequest(queries[0], k=3, alpha=0.5))
            assert excinfo.value.retry_after_ms is not None
        finally:
            sharded.close()


# ---------------------------------------------------------------------------
# Deadline propagation
# ---------------------------------------------------------------------------
class TestDeadlines:
    @pytest.fixture(scope="class")
    def sharded(self, objects):
        db = ShardedDatabase.build(
            list(objects), n_shards=2, placement="hash", config=chaos_config()
        )
        yield db
        db.close()

    def test_expired_before_execution(self, sharded, queries):
        with pytest.raises(DeadlineExceededError):
            sharded.execute(AknnRequest(queries[0], k=3, alpha=0.5, deadline_ms=1e-3))

    def test_deadline_ms_must_be_positive(self, queries):
        with pytest.raises(InvalidQueryError):
            AknnRequest(queries[0], k=3, alpha=0.5, deadline_ms=0.0)

    def test_delay_fault_blows_the_deadline(self, objects, queries):
        sharded = ShardedDatabase.build(
            list(objects), n_shards=2, placement="hash", config=chaos_config()
        )
        try:
            sharded.fault_plan = FaultPlan.parse("kind=delay,delay_ms=120")
            requests = [
                AknnRequest(q, k=3, alpha=0.5, deadline_ms=25.0) for q in queries[:2]
            ]
            with pytest.raises(DeadlineExceededError):
                sharded.execute_batch(requests)
            counters = sharded.metrics.as_dict()
            assert counters.get(MetricsCollector.DEADLINE_EXPIRED, 0) >= 0
        finally:
            sharded.close()

    def test_expired_in_queue_is_withdrawn(self, sharded, queries, monkeypatch):
        real_execute_plan = query_service_module.execute_plan

        def slow_execute_plan(engine, requests, **kwargs):
            time.sleep(0.15)  # pin the single flusher thread
            return real_execute_plan(engine, requests, **kwargs)

        monkeypatch.setattr(query_service_module, "execute_plan", slow_execute_plan)
        with QueryService(sharded, window_ms=1.0) as service:
            blocker = service.submit_request(AknnRequest(queries[0], k=3, alpha=0.5))
            time.sleep(0.02)  # let the flusher pick the blocker up
            doomed = service.submit_request(
                RangeRequest(queries[1], alpha=0.5, radius=2.0, deadline_ms=20.0)
            )
            blocker.result(timeout=30.0)
            with pytest.raises(DeadlineExceededError, match="waiting in queue"):
                doomed.result(timeout=30.0)
            counters = service.metrics.as_dict()
            assert counters[MetricsCollector.REQUESTS_WITHDRAWN_EXPIRED] >= 1
            assert counters[MetricsCollector.DEADLINE_EXPIRED] >= 1


# ---------------------------------------------------------------------------
# stop() audit: no future may hang forever
# ---------------------------------------------------------------------------
class TestStopAudit:
    @pytest.fixture(scope="class")
    def sharded(self, objects):
        db = ShardedDatabase.build(
            list(objects), n_shards=2, placement="hash", config=chaos_config()
        )
        yield db
        db.close()

    def test_stop_with_drain_resolves_every_future(self, sharded, queries):
        service = QueryService(sharded, window_ms=500.0).start()
        futures = [
            service.submit_request(AknnRequest(q, k=3, alpha=0.5)) for q in queries
        ]
        service.stop(drain=True)
        for future in futures:
            assert future.done()
            assert future.result(timeout=0).object_ids

    def test_stop_without_drain_fails_every_future(self, sharded, queries):
        service = QueryService(sharded, window_ms=500.0).start()
        futures = [
            service.submit_request(AknnRequest(q, k=3, alpha=0.5)) for q in queries
        ]
        service.stop(drain=False)
        for future in futures:
            assert future.done()
            with pytest.raises(ServiceStoppedError):
                future.result(timeout=0)

    def test_crashing_flush_fails_futures_instead_of_hanging(
        self, sharded, queries, monkeypatch
    ):
        monkeypatch.setattr(
            QueryService,
            "_execute",
            lambda self, bucket: (_ for _ in ()).throw(RuntimeError("flusher boom")),
        )
        service = QueryService(sharded, window_ms=1.0).start()
        try:
            future = service.submit_request(AknnRequest(queries[0], k=3, alpha=0.5))
            with pytest.raises(RuntimeError, match="flusher boom"):
                future.result(timeout=10.0)
        finally:
            service.stop(drain=False)

    def test_futures_under_faults_still_all_complete(self, objects, queries):
        sharded = ShardedDatabase.build(
            list(objects), n_shards=3, placement="hash", config=chaos_config()
        )
        try:
            sharded.fault_plan = FaultPlan.random(
                np.random.default_rng(11), n_shards=3, n_rules=6
            )
            with QueryService(sharded, window_ms=1.0) as service:
                futures = [
                    service.submit_request(AknnRequest(q, k=3, alpha=0.5))
                    for q in queries * 4
                ]
                for future in futures:
                    result = future.result(timeout=60.0)
                    assert result.coverage is None or result.coverage.answered
        finally:
            sharded.close()


# ---------------------------------------------------------------------------
# Delete-vs-query churn (the _owner_shard race regression)
# ---------------------------------------------------------------------------
class TestChurn:
    def test_double_delete_reports_not_found(self, objects):
        sharded = ShardedDatabase.build(
            list(objects)[:12], n_shards=2, placement="hash", config=chaos_config()
        )
        try:
            victim = sharded.object_ids()[0]
            sharded.delete(victim)
            with pytest.raises(ObjectNotFoundError):
                sharded.delete(victim)
            with pytest.raises(ObjectNotFoundError):
                sharded.get_object(victim)
        finally:
            sharded.close()

    def test_concurrent_deletes_never_leak_keyerror(self, objects, queries):
        sharded = ShardedDatabase.build(
            list(objects), n_shards=2, placement="hash", config=chaos_config()
        )
        errors = []
        stop = threading.Event()

        def query_loop():
            while not stop.is_set():
                try:
                    sharded.execute(AknnRequest(queries[0], k=3, alpha=0.5))
                    sharded.execute(ReverseRequest(queries[1], k=2, alpha=0.5))
                except ObjectNotFoundError:
                    pass  # acceptable: the object vanished mid-query
                except Exception as error:  # anything else is the regression
                    errors.append(error)
                    return

        threads = [threading.Thread(target=query_loop) for _ in range(3)]
        try:
            for thread in threads:
                thread.start()
            for object_id in sharded.object_ids()[:16]:
                sharded.delete(object_id)
                time.sleep(0.001)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
            sharded.close()
        assert not errors, f"churn leaked unexpected errors: {errors!r}"


# ---------------------------------------------------------------------------
# RetryingClient: the backpressure contract's reference consumer
# ---------------------------------------------------------------------------
class _ScriptedEngine:
    """Fails with the scripted errors, then answers "ok" forever."""

    def __init__(self, errors):
        self.errors = list(errors)
        self.calls = 0

    def execute(self, request, **kwargs):
        self.calls += 1
        if self.errors:
            raise self.errors.pop(0)
        return "ok"

    def execute_batch(self, requests, **kwargs):
        self.calls += 1
        if self.errors:
            raise self.errors.pop(0)
        return ["ok"] * len(requests)


class TestRetryingClient:
    def request(self, queries):
        return AknnRequest(queries[0], k=2, alpha=0.5)

    def test_honours_retry_after_hint(self, queries):
        engine = _ScriptedEngine(
            [
                ServiceOverloadedError("shed", retry_after_ms=8.0),
                ShardUnavailableError("cooling", retry_after_ms=4.0, shards=(1,)),
            ]
        )
        sleeps = []
        client = RetryingClient(
            engine, max_retries=3, rand=lambda: 0.0, sleep=sleeps.append
        )
        assert client.execute(self.request(queries)) == "ok"
        assert engine.calls == 3
        # Slept exactly the hinted amount (zero jitter injected).
        assert sleeps == pytest.approx([0.008, 0.004])
        assert client.metrics.as_dict()[MetricsCollector.RETRIES] == 2

    def test_jitter_is_applied_after_the_hint(self, queries):
        engine = _ScriptedEngine(
            [ServiceOverloadedError("shed", retry_after_ms=10.0)]
        )
        sleeps = []
        client = RetryingClient(
            engine, jitter=0.5, rand=lambda: 1.0, sleep=sleeps.append
        )
        assert client.execute(self.request(queries)) == "ok"
        assert sleeps == pytest.approx([0.015])  # never earlier than the hint

    def test_budget_exhaustion_chains_the_last_error(self, queries):
        engine = _ScriptedEngine(
            [ServiceOverloadedError("shed", retry_after_ms=1000.0)] * 10
        )
        client = RetryingClient(
            engine, max_retries=5, budget_ms=50.0, sleep=lambda _: None
        )
        with pytest.raises(RetryBudgetExhaustedError) as excinfo:
            client.execute(self.request(queries))
        assert engine.calls == 1  # first hint alone blew the budget
        assert excinfo.value.retry_after_ms == 1000.0
        assert isinstance(excinfo.value.__cause__, ServiceOverloadedError)

    def test_max_retries_bounds_attempts(self, queries):
        engine = _ScriptedEngine(
            [ServiceOverloadedError("shed", retry_after_ms=0.1)] * 10
        )
        client = RetryingClient(engine, max_retries=2, sleep=lambda _: None)
        with pytest.raises(RetryBudgetExhaustedError):
            client.execute(self.request(queries))
        assert engine.calls == 3  # initial + 2 retries

    def test_non_backpressure_errors_are_never_retried(self, queries):
        engine = _ScriptedEngine([ValueError("malformed")])
        client = RetryingClient(engine, sleep=lambda _: None)
        with pytest.raises(ValueError):
            client.execute(self.request(queries))
        assert engine.calls == 1

    def test_batch_resubmission_goes_whole_batch(self, queries):
        engine = _ScriptedEngine(
            [ServiceOverloadedError("shed", retry_after_ms=0.1)]
        )
        client = RetryingClient(engine, sleep=lambda _: None)
        requests = [self.request(queries)] * 4
        assert client.execute_batch(requests) == ["ok"] * 4
        assert engine.calls == 2

    def test_end_to_end_against_a_tiny_service(self, objects, queries):
        sharded = ShardedDatabase.build(
            list(objects)[:16], n_shards=2, placement="hash", config=chaos_config()
        )
        try:
            with QueryService(sharded, window_ms=1.0, queue_depth=1) as service:
                client = RetryingClient(service, max_retries=8, budget_ms=5000.0)
                results = [
                    client.execute(AknnRequest(q, k=2, alpha=0.5)) for q in queries
                ]
                assert all(r.object_ids for r in results)
        finally:
            sharded.close()
