"""Tests for the vectorized batch query executor.

The load-bearing property is *parity*: ``Database.aknn_batch`` must return
exactly the same neighbour sets as looping the single-query ``Database.aknn``
over the batch, for every AKNN method variant, with exact distances.
"""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.aknn import AKNN_METHODS
from repro.datasets.builder import DatasetBundle
from repro.exceptions import InvalidQueryError
from repro.fuzzy.alpha_distance import alpha_distance


@pytest.fixture(scope="module")
def bundle():
    return DatasetBundle.create(
        n_objects=250,
        points_per_object=24,
        seed=17,
        config=RuntimeConfig(rtree_max_entries=8, cache_capacity=64),
    )


@pytest.fixture(scope="module")
def queries(bundle):
    return bundle.queries(12)


class TestBatchParity:
    @pytest.mark.parametrize("method", AKNN_METHODS)
    def test_neighbor_sets_match_single_query_path(self, bundle, queries, method):
        database = bundle.database
        batch = database.aknn_batch(queries, k=7, alpha=0.5, method=method)
        assert len(batch) == len(queries)
        for query, result in zip(queries, batch.results):
            single = database.aknn(query, k=7, alpha=0.5, method=method)
            assert set(result.object_ids) == set(single.object_ids)

    @pytest.mark.parametrize("alpha", [0.2, 0.5, 0.85])
    @pytest.mark.parametrize("k", [1, 5, 15])
    def test_parity_across_k_and_alpha(self, bundle, queries, k, alpha):
        database = bundle.database
        batch = database.aknn_batch(queries[:6], k=k, alpha=alpha)
        for query, result in zip(queries, batch.results):
            single = database.aknn(query, k=k, alpha=alpha)
            assert set(result.object_ids) == set(single.object_ids)

    def test_distances_are_exact(self, bundle, queries):
        database = bundle.database
        batch = database.aknn_batch(queries[:3], k=5, alpha=0.5)
        for query, result in zip(queries, batch.results):
            for neighbor in result.neighbors:
                assert neighbor.probed
                obj = database.get_object(neighbor.object_id)
                expected = alpha_distance(obj, query, 0.5)
                assert neighbor.distance == pytest.approx(expected, abs=1e-9)

    def test_matches_linear_scan_ground_truth(self, bundle, queries):
        database = bundle.database
        batch = database.aknn_batch(queries[:4], k=6, alpha=0.6)
        for query, result in zip(queries, batch.results):
            truth = database.linear_scan().aknn(query, k=6, alpha=0.6)
            assert set(result.object_ids) == set(truth.object_ids)

    def test_workers_do_not_change_results(self, bundle, queries):
        database = bundle.database
        serial = database.aknn_batch(queries, k=5, alpha=0.5, workers=0)
        threaded = database.aknn_batch(queries, k=5, alpha=0.5, workers=4)
        for a, b in zip(serial.results, threaded.results):
            assert a.object_ids == b.object_ids

    def test_repeated_batches_are_stable(self, bundle, queries):
        """The cached representative index must not drift across calls."""
        database = bundle.database
        first = database.aknn_batch(queries[:5], k=4, alpha=0.5)
        second = database.aknn_batch(queries[:5], k=4, alpha=0.5)
        for a, b in zip(first.results, second.results):
            assert a.object_ids == b.object_ids


class TestBatchEdgeCases:
    def test_k_larger_than_database_returns_everything(self, bundle, queries):
        database = bundle.database
        batch = database.aknn_batch(queries[:2], k=len(database) + 10, alpha=0.5)
        for result in batch.results:
            assert len(result) == len(database)

    def test_empty_batch(self, bundle):
        batch = bundle.database.aknn_batch([], k=3, alpha=0.5)
        assert len(batch) == 0
        assert batch.stats.extra["batch_queries"] == 0.0

    def test_invalid_k_rejected(self, bundle, queries):
        with pytest.raises(InvalidQueryError):
            bundle.database.aknn_batch(queries[:1], k=0, alpha=0.5)

    def test_invalid_method_rejected(self, bundle, queries):
        with pytest.raises(InvalidQueryError):
            bundle.database.aknn_batch(queries[:1], k=3, alpha=0.5, method="nope")

    def test_invalid_alpha_rejected(self, bundle, queries):
        with pytest.raises(InvalidQueryError):
            bundle.database.aknn_batch(queries[:1], k=3, alpha=0.0)


class TestBatchStats:
    def test_aggregate_stats_shape(self, bundle, queries):
        database = bundle.database
        batch = database.aknn_batch(queries, k=5, alpha=0.5)
        stats = batch.stats
        assert stats.aknn_calls == len(queries)
        assert stats.extra["batch_queries"] == float(len(queries))
        assert stats.node_accesses >= 1
        assert stats.distance_evaluations > 0
        assert stats.elapsed_seconds > 0
        assert batch.throughput_qps > 0
        assert stats.extra["throughput_qps"] == pytest.approx(batch.throughput_qps)

    def test_shared_traversal_visits_nodes_once(self, bundle, queries):
        """Batch node accesses must undercut the summed single-query visits."""
        database = bundle.database
        batch = database.aknn_batch(queries, k=5, alpha=0.5)
        total_nodes = database.tree.node_count()
        assert batch.stats.node_accesses <= total_nodes

    def test_objects_fetched_once_per_batch(self, bundle, queries):
        database = bundle.database
        before = database.store.statistics.snapshot()
        batch = database.aknn_batch(queries, k=5, alpha=0.5)
        accesses = database.store.statistics.object_accesses - before.object_accesses
        distinct_neighbors = {
            oid for result in batch.results for oid in result.object_ids
        }
        assert accesses <= len(database)
        assert len(distinct_neighbors) <= accesses

    def test_per_query_results_carry_distance_counts(self, bundle, queries):
        batch = bundle.database.aknn_batch(queries[:3], k=4, alpha=0.5)
        for result in batch.results:
            assert result.stats.aknn_calls == 1
            assert result.stats.distance_evaluations >= 0
