"""Unit tests for the alpha-distance (Definition 3) and distance profiles."""

import numpy as np
import pytest

from repro.exceptions import EmptyAlphaCutError, InvalidFuzzyObjectError
from repro.fuzzy.alpha_distance import alpha_distance, alpha_distance_points, distance_profile
from repro.fuzzy.fuzzy_object import FuzzyObject


def line_object(offset, memberships, object_id=None):
    """Points along the x axis starting at ``offset`` with the given memberships."""
    n = len(memberships)
    points = np.column_stack([offset + np.arange(n, dtype=float), np.zeros(n)])
    return FuzzyObject(points, np.asarray(memberships, dtype=float), object_id=object_id)


class TestAlphaDistance:
    def test_figure2_style_example(self):
        # A: points at x = 0 (mu=1), 1 (mu=0.5), 2 (mu=0.3)
        # B: points at x = 10 (mu=1), 9 (mu=0.5), 8 (mu=0.3)
        a = FuzzyObject(
            np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]]), np.array([1.0, 0.5, 0.3])
        )
        b = FuzzyObject(
            np.array([[10.0, 0.0], [9.0, 0.0], [8.0, 0.0]]), np.array([1.0, 0.5, 0.3])
        )
        assert alpha_distance(a, b, 0.3) == pytest.approx(6.0)
        assert alpha_distance(a, b, 0.5) == pytest.approx(8.0)
        assert alpha_distance(a, b, 1.0) == pytest.approx(10.0)

    def test_distance_to_self_is_zero(self):
        a = line_object(0.0, [1.0, 0.5, 0.2])
        for alpha in (0.1, 0.5, 1.0):
            assert alpha_distance(a, a, alpha) == 0.0

    def test_symmetry(self, rng):
        from tests.conftest import make_fuzzy_object

        a = make_fuzzy_object(rng)
        b = make_fuzzy_object(rng, center=[8.0, 8.0])
        for alpha in (0.2, 0.6, 1.0):
            assert alpha_distance(a, b, alpha) == pytest.approx(alpha_distance(b, a, alpha))

    def test_monotone_in_alpha(self, rng):
        from tests.conftest import make_fuzzy_object

        a = make_fuzzy_object(rng)
        b = make_fuzzy_object(rng, center=[9.0, 9.0])
        alphas = np.linspace(0.05, 1.0, 12)
        distances = [alpha_distance(a, b, alpha) for alpha in alphas]
        assert all(d2 >= d1 - 1e-9 for d1, d2 in zip(distances, distances[1:]))

    def test_overlapping_objects_have_zero_distance(self):
        a = FuzzyObject(np.array([[0.0, 0.0], [1.0, 1.0]]), np.array([1.0, 0.5]))
        b = FuzzyObject(np.array([[1.0, 1.0], [2.0, 2.0]]), np.array([0.5, 1.0]))
        assert alpha_distance(a, b, 0.5) == 0.0

    def test_dimension_mismatch_raises(self):
        a = FuzzyObject(np.zeros((1, 2)), np.array([1.0]))
        b = FuzzyObject(np.zeros((1, 3)), np.array([1.0]))
        with pytest.raises(InvalidFuzzyObjectError):
            alpha_distance(a, b, 0.5)

    def test_alpha_distance_points_empty_cut_raises(self):
        with pytest.raises(EmptyAlphaCutError):
            alpha_distance_points(np.empty((0, 2)), np.zeros((1, 2)))

    def test_matches_explicit_cut_computation(self, rng):
        from tests.conftest import make_fuzzy_object
        from repro.geometry.distance import closest_pair_distance

        a = make_fuzzy_object(rng)
        b = make_fuzzy_object(rng, center=[6.0, 2.0])
        for alpha in (0.3, 0.7):
            expected = closest_pair_distance(a.alpha_cut(alpha), b.alpha_cut(alpha))
            assert alpha_distance(a, b, alpha) == pytest.approx(expected)


class TestDistanceProfile:
    def test_profile_matches_pointwise_distances(self, rng):
        from tests.conftest import make_fuzzy_object

        a = make_fuzzy_object(rng, n_points=20)
        b = make_fuzzy_object(rng, n_points=20, center=[7.0, 7.0])
        profile = distance_profile(a, b)
        for alpha in np.linspace(0.05, 1.0, 17):
            assert profile.value(alpha) == pytest.approx(alpha_distance(a, b, alpha))

    def test_profile_levels_cover_one(self, rng):
        from tests.conftest import make_fuzzy_object

        a = make_fuzzy_object(rng)
        b = make_fuzzy_object(rng)
        profile = distance_profile(a, b)
        assert profile.levels[-1] == pytest.approx(1.0)

    def test_profile_is_monotone(self, rng):
        from tests.conftest import make_fuzzy_object

        a = make_fuzzy_object(rng)
        b = make_fuzzy_object(rng, center=[9.0, 0.0])
        profile = distance_profile(a, b)
        finite = profile.distances[np.isfinite(profile.distances)]
        assert np.all(np.diff(finite) >= -1e-9)

    def test_max_level_truncation(self, rng):
        from tests.conftest import make_fuzzy_object

        a = make_fuzzy_object(rng)
        b = make_fuzzy_object(rng, center=[4.0, 4.0])
        full = distance_profile(a, b)
        truncated = distance_profile(a, b, max_level=0.6)
        # Values inside the truncated domain agree with the full profile.
        for alpha in (0.1, 0.3, 0.55, 0.6):
            assert truncated.value(alpha) == pytest.approx(full.value(alpha))
        assert truncated.levels.size <= full.levels.size

    def test_dimension_mismatch_raises(self):
        a = FuzzyObject(np.zeros((1, 2)), np.array([1.0]))
        b = FuzzyObject(np.zeros((1, 3)), np.array([1.0]))
        with pytest.raises(InvalidFuzzyObjectError):
            distance_profile(a, b)

    def test_handcrafted_step_function(self):
        # A has levels 1.0/0.5; B is crisp.  Moving the 0.5 point away from B
        # makes the distance jump exactly at alpha > 0.5.
        a = FuzzyObject(
            np.array([[0.0, 0.0], [3.0, 0.0]]), np.array([0.5, 1.0])
        )
        b = FuzzyObject.single_point([-2.0, 0.0])
        profile = distance_profile(a, b)
        assert profile.value(0.4) == pytest.approx(2.0)
        assert profile.value(0.5) == pytest.approx(2.0)
        assert profile.value(0.51) == pytest.approx(5.0)
        assert profile.value(1.0) == pytest.approx(5.0)
