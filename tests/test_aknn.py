"""Tests for the AKNN searcher: all method variants against the linear scan."""

import numpy as np
import pytest

from repro.core.aknn import AKNN_METHODS, AKNNSearcher
from repro.exceptions import InvalidQueryError
from tests.conftest import sorted_exact_distances


class TestCorrectness:
    @pytest.mark.parametrize("method", AKNN_METHODS)
    @pytest.mark.parametrize("alpha", [0.2, 0.5, 0.8, 1.0])
    def test_matches_linear_scan(self, dense_database, dense_queries, method, alpha):
        k = 7
        truth = dense_database.linear_scan().aknn(dense_queries[0], k=k, alpha=alpha)
        expected = sorted(n.distance for n in truth.neighbors)
        result = dense_database.aknn(dense_queries[0], k=k, alpha=alpha, method=method)
        assert len(result) == k
        actual = sorted_exact_distances(dense_database, result, dense_queries[0], alpha)
        np.testing.assert_allclose(actual, expected, rtol=0, atol=1e-9)

    @pytest.mark.parametrize("method", AKNN_METHODS)
    def test_multiple_queries_and_ks(self, dense_database, dense_queries, method):
        for query in dense_queries:
            for k in (1, 3, 12):
                truth = dense_database.linear_scan().aknn(query, k=k, alpha=0.5)
                expected = sorted(n.distance for n in truth.neighbors)
                result = dense_database.aknn(query, k=k, alpha=0.5, method=method)
                actual = sorted_exact_distances(dense_database, result, query, 0.5)
                np.testing.assert_allclose(actual, expected, atol=1e-9)

    @pytest.mark.parametrize("method", AKNN_METHODS)
    def test_on_cell_dataset(self, cell_database, dense_queries, method):
        rng = np.random.default_rng(3)
        from repro.datasets.queries import generate_query_object

        query = generate_query_object(rng, kind="cells", space_size=7.0, points_per_object=40)
        truth = cell_database.linear_scan().aknn(query, k=5, alpha=0.6)
        expected = sorted(n.distance for n in truth.neighbors)
        result = cell_database.aknn(query, k=5, alpha=0.6, method=method)
        actual = sorted_exact_distances(cell_database, result, query, 0.6)
        np.testing.assert_allclose(actual, expected, atol=1e-9)

    def test_k_larger_than_dataset(self, dense_database, dense_queries):
        result = dense_database.aknn(dense_queries[0], k=10_000, alpha=0.5)
        assert len(result) == len(dense_database)

    def test_point_query(self, dense_database):
        from repro.fuzzy.fuzzy_object import FuzzyObject

        query = FuzzyObject.single_point([4.0, 4.0])
        truth = dense_database.linear_scan().aknn(query, k=3, alpha=0.5)
        result = dense_database.aknn(query, k=3, alpha=0.5)
        expected = sorted(n.distance for n in truth.neighbors)
        actual = sorted_exact_distances(dense_database, result, query, 0.5)
        np.testing.assert_allclose(actual, expected, atol=1e-9)


class TestValidation:
    def test_invalid_k(self, dense_database, dense_queries):
        with pytest.raises(InvalidQueryError):
            dense_database.aknn(dense_queries[0], k=0, alpha=0.5)

    def test_invalid_method(self, dense_database, dense_queries):
        with pytest.raises(InvalidQueryError):
            dense_database.aknn(dense_queries[0], k=3, alpha=0.5, method="bogus")

    def test_invalid_alpha(self, dense_database, dense_queries):
        with pytest.raises(InvalidQueryError):
            dense_database.aknn(dense_queries[0], k=3, alpha=0.0)

    def test_empty_database(self, tmp_path):
        from repro.core.database import FuzzyDatabase

        database = FuzzyDatabase.build([])
        from repro.fuzzy.fuzzy_object import FuzzyObject

        result = database.aknn(FuzzyObject.single_point([0.0, 0.0]), k=3, alpha=0.5)
        assert len(result) == 0


class TestCostBehaviour:
    def test_stats_populated(self, dense_database, dense_queries):
        dense_database.reset_statistics()
        result = dense_database.aknn(dense_queries[0], k=5, alpha=0.5, method="basic")
        assert result.stats.object_accesses >= 5
        assert result.stats.node_accesses >= 1
        assert result.stats.elapsed_seconds > 0
        assert result.stats.aknn_calls == 1

    def test_basic_accesses_at_least_k(self, dense_database, dense_queries):
        result = dense_database.aknn(dense_queries[0], k=9, alpha=0.5, method="basic")
        assert result.stats.object_accesses >= 9

    def test_optimised_never_probes_more_than_basic(self, dense_database, dense_queries):
        """The full optimisation stack should not access more objects than the
        basic algorithm (averaged over queries, per the paper's Figure 11)."""
        k, alpha = 8, 0.7
        basic_total = 0
        optimised_total = 0
        for query in dense_queries:
            basic_total += dense_database.aknn(query, k=k, alpha=alpha, method="basic").stats.object_accesses
            optimised_total += dense_database.aknn(query, k=k, alpha=alpha, method="lb_lp_ub").stats.object_accesses
        assert optimised_total <= basic_total

    def test_lazy_probe_defers_accesses(self, dense_database, dense_queries):
        """lb_lp may confirm some neighbours purely from bounds."""
        result = dense_database.aknn(dense_queries[0], k=5, alpha=0.5, method="lb_lp_ub")
        assert result.stats.object_accesses <= 5 + len(dense_database)
        # every returned neighbour carries consistent bound information
        for neighbor in result.neighbors:
            assert neighbor.lower_bound <= neighbor.upper_bound + 1e-9
            if neighbor.distance is not None:
                assert neighbor.probed

    def test_object_accesses_match_store_counter(self, dense_database, dense_queries):
        dense_database.reset_statistics()
        result = dense_database.aknn(dense_queries[0], k=5, alpha=0.5, method="lb")
        assert result.stats.object_accesses == dense_database.object_accesses


class TestSearcherDirectly:
    def test_searcher_reuse_across_queries(self, dense_database, dense_queries):
        searcher = AKNNSearcher(dense_database.store, dense_database.tree)
        first = searcher.search(dense_queries[0], k=4, alpha=0.5)
        second = searcher.search(dense_queries[1], k=4, alpha=0.5)
        assert len(first) == 4 and len(second) == 4

    def test_result_metadata(self, dense_database, dense_queries):
        result = dense_database.aknn(dense_queries[0], k=4, alpha=0.3, method="lb")
        assert result.k == 4
        assert result.alpha == 0.3
        assert result.method == "lb"
        assert len(result.object_ids) == 4
        ordered = result.sorted_by_distance()
        values = [n.best_known_distance for n in ordered]
        assert values == sorted(values)
