"""Unit tests for the linear-scan baseline (the ground-truth oracle)."""

import numpy as np
import pytest

from repro.core.linear_scan import LinearScanSearcher, evaluate_piecewise, rank_objects
from repro.exceptions import InvalidQueryError
from repro.fuzzy.alpha_distance import alpha_distance
from repro.fuzzy.intervals import IntervalSet
from repro.fuzzy.profile import DistanceProfile
from repro.storage.object_store import ObjectStore
from tests.conftest import make_fuzzy_object


@pytest.fixture
def store_and_query(rng):
    objects = [
        make_fuzzy_object(rng, n_points=25, center=rng.random(2) * 10, object_id=i)
        for i in range(20)
    ]
    store = ObjectStore.build(objects)
    query = make_fuzzy_object(rng, n_points=25, center=[5.0, 5.0])
    yield store, objects, query
    store.close()


class TestRankObjects:
    def test_orders_by_distance_then_id(self):
        distances = {3: 1.0, 1: 2.0, 2: 1.0, 4: 0.5}
        top, kth, k_plus_1 = rank_objects(distances, 2)
        assert top == [4, 2]
        assert kth == 1.0
        assert k_plus_1 == 1.0  # object 3 ties at distance 1.0

    def test_fewer_objects_than_k(self):
        top, kth, k_plus_1 = rank_objects({1: 3.0}, 5)
        assert top == [1]
        assert kth == 3.0
        assert k_plus_1 == float("inf")

    def test_empty(self):
        top, kth, k_plus_1 = rank_objects({}, 3)
        assert top == []
        assert kth == float("inf")


class TestAKNN:
    def test_returns_k_smallest_distances(self, store_and_query):
        store, objects, query = store_and_query
        searcher = LinearScanSearcher(store)
        result = searcher.aknn(query, k=5, alpha=0.5)
        assert len(result) == 5
        all_distances = sorted(alpha_distance(obj, query, 0.5) for obj in objects)
        returned = sorted(n.distance for n in result.neighbors)
        np.testing.assert_allclose(returned, all_distances[:5])

    def test_counts_every_object_access(self, store_and_query):
        store, objects, query = store_and_query
        searcher = LinearScanSearcher(store)
        result = searcher.aknn(query, k=3, alpha=0.5)
        assert result.stats.object_accesses == len(objects)
        assert result.stats.distance_evaluations == len(objects)

    def test_k_larger_than_dataset(self, store_and_query):
        store, objects, query = store_and_query
        result = LinearScanSearcher(store).aknn(query, k=100, alpha=0.5)
        assert len(result) == len(objects)

    def test_invalid_parameters(self, store_and_query):
        store, _, query = store_and_query
        searcher = LinearScanSearcher(store)
        with pytest.raises(InvalidQueryError):
            searcher.aknn(query, k=0, alpha=0.5)
        with pytest.raises(InvalidQueryError):
            searcher.aknn(query, k=3, alpha=1.5)


class TestRangeSearch:
    def test_matches_manual_filter(self, store_and_query):
        store, objects, query = store_and_query
        radius = 2.5
        result = LinearScanSearcher(store).range_search(query, 0.5, radius)
        expected = sorted(
            obj.object_id
            for obj in objects
            if alpha_distance(obj, query, 0.5) <= radius
        )
        assert sorted(result.object_ids) == expected
        for object_id, distance in result.matches:
            assert distance <= radius

    def test_zero_radius(self, store_and_query):
        store, objects, query = store_and_query
        result = LinearScanSearcher(store).range_search(query, 0.5, 0.0)
        for object_id, distance in result.matches:
            assert distance == 0.0

    def test_negative_radius_rejected(self, store_and_query):
        store, _, query = store_and_query
        with pytest.raises(InvalidQueryError):
            LinearScanSearcher(store).range_search(query, 0.5, -1.0)


class TestRKNNGroundTruth:
    def test_assignments_match_pointwise_topk(self, store_and_query):
        """At any alpha inside the range, the objects whose qualifying range
        covers alpha are exactly the pointwise top-k."""
        store, objects, query = store_and_query
        searcher = LinearScanSearcher(store)
        k = 4
        result = searcher.rknn(query, k=k, alpha_range=(0.3, 0.8))
        for alpha in (0.3, 0.45, 0.61, 0.8):
            distances = {obj.object_id: alpha_distance(obj, query, alpha) for obj in objects}
            expected, _, _ = rank_objects(distances, k)
            covering = [
                object_id
                for object_id, ranges in result.assignments.items()
                if ranges.contains(alpha)
            ]
            assert sorted(covering) == sorted(expected)

    def test_every_range_inside_query_range(self, store_and_query):
        store, _, query = store_and_query
        result = LinearScanSearcher(store).rknn(query, k=3, alpha_range=(0.4, 0.6))
        for ranges in result.assignments.values():
            span = ranges.span
            assert span.start >= 0.4 - 1e-9
            assert span.end <= 0.6 + 1e-9

    def test_invalid_range_rejected(self, store_and_query):
        store, _, query = store_and_query
        searcher = LinearScanSearcher(store)
        with pytest.raises(InvalidQueryError):
            searcher.rknn(query, k=3, alpha_range=(0.6, 0.4))
        with pytest.raises(InvalidQueryError):
            searcher.rknn(query, k=3, alpha_range=(0.0, 0.5))
        with pytest.raises(InvalidQueryError):
            searcher.rknn(query, k=0, alpha_range=(0.3, 0.5))

    def test_degenerate_range_equals_aknn(self, store_and_query):
        store, _, query = store_and_query
        searcher = LinearScanSearcher(store)
        rknn = searcher.rknn(query, k=3, alpha_range=(0.5, 0.5))
        aknn = searcher.aknn(query, k=3, alpha=0.5)
        assert sorted(rknn.object_ids) == sorted(aknn.object_ids)


class TestEvaluatePiecewise:
    def test_handcrafted_crossover(self):
        """Two objects whose distance curves cross: the assignment switches at
        the crossing level."""
        profiles = {
            1: DistanceProfile([0.5, 1.0], [1.0, 5.0]),
            2: DistanceProfile([1.0], [2.0]),
        }
        assignments = evaluate_piecewise(profiles, k=1, alpha_start=0.2, alpha_end=0.9)
        # Object 1 is closer until alpha = 0.5, object 2 afterwards.
        assert assignments[1].approx_equal(IntervalSet.single(0.2, 0.5))
        assert assignments[2].approx_equal(IntervalSet.single(0.5, 0.9))

    def test_empty_profiles(self):
        assert evaluate_piecewise({}, 3, 0.2, 0.8) == {}
