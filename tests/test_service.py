"""Tests for the coalescing query service.

Covers the coalescer's grouping and flush triggers, admission control,
latency telemetry, live updates through the service, and correctness under
concurrent client submissions.
"""

import threading
import time

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.database import FuzzyDatabase
from repro.datasets.builder import build_dataset
from repro.datasets.queries import generate_query_object
from repro.exceptions import ServiceOverloadedError, ServiceStoppedError
from repro.service import QueryService, ShardedDatabase

from tests.conftest import make_fuzzy_object


@pytest.fixture(scope="module")
def objects():
    return build_dataset(
        kind="synthetic", n_objects=70, points_per_object=20, seed=23, space_size=8.0
    )


@pytest.fixture(scope="module")
def reference(objects):
    database = FuzzyDatabase.build(
        list(objects), config=RuntimeConfig(rtree_max_entries=8)
    )
    yield database
    database.close()


@pytest.fixture
def sharded(objects):
    database = ShardedDatabase.build(
        list(objects),
        n_shards=2,
        placement="hash",
        config=RuntimeConfig(rtree_max_entries=8, cache_capacity=16),
    )
    yield database
    database.close()


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(808)
    return [
        generate_query_object(rng, kind="synthetic", space_size=8.0, points_per_object=20)
        for _ in range(8)
    ]


class TestCoalescing:
    def test_results_match_direct_queries(self, sharded, reference, queries):
        with QueryService(sharded, window_ms=20.0, max_batch=32) as service:
            futures = [service.submit(q, k=5, alpha=0.5) for q in queries]
            for query, future in zip(queries, futures):
                result = future.result(timeout=30)
                want = reference.aknn(query, k=5, alpha=0.5)
                assert set(result.object_ids) == set(want.object_ids)

    def test_compatible_requests_share_a_batch(self, sharded, queries):
        with QueryService(sharded, window_ms=200.0, max_batch=len(queries)) as service:
            futures = [service.submit(q, k=4, alpha=0.5) for q in queries]
            for future in futures:
                future.result(timeout=30)
            stats = service.stats()
            # The size trigger fires once the bucket reaches max_batch.
            assert stats.batches_flushed == 1
            assert stats.max_batch_size == len(queries)

    def test_distinct_keys_use_distinct_batches(self, sharded, queries):
        with QueryService(sharded, window_ms=50.0, max_batch=32) as service:
            f1 = service.submit(queries[0], k=3, alpha=0.5)
            f2 = service.submit(queries[1], k=5, alpha=0.5)
            f3 = service.submit(queries[2], k=3, alpha=0.7)
            r1, r2, r3 = (f.result(timeout=30) for f in (f1, f2, f3))
            assert r1.k == 3 and r2.k == 5 and r3.k == 3
            assert r3.alpha == 0.7
            assert service.stats().batches_flushed == 3

    def test_deadline_flush_without_companions(self, sharded, queries):
        with QueryService(sharded, window_ms=5.0, max_batch=64) as service:
            result = service.submit(queries[0], k=3, alpha=0.5).result(timeout=30)
            assert len(result) == 3

    def test_sync_wrapper(self, sharded, reference, queries):
        with QueryService(sharded, window_ms=1.0) as service:
            result = service.aknn(queries[0], k=4, alpha=0.5, timeout=30)
            want = reference.aknn(queries[0], k=4, alpha=0.5)
            assert set(result.object_ids) == set(want.object_ids)

    def test_works_over_plain_database(self, reference, queries):
        # The coalescer only needs aknn_batch, so an unsharded database works.
        with QueryService(reference, window_ms=5.0) as service:
            result = service.aknn(queries[0], k=4, alpha=0.5, timeout=30)
            want = reference.aknn(queries[0], k=4, alpha=0.5)
            assert set(result.object_ids) == set(want.object_ids)

    def test_reverse_submissions_coalesce_into_one_bucket(
        self, sharded, reference, queries
    ):
        """Reverse AKNN requests sharing (k, alpha) flush as one bucket and
        return exactly the direct per-query answers."""
        with QueryService(
            sharded, window_ms=200.0, max_batch=len(queries)
        ) as service:
            futures = [service.submit_reverse(q, k=3, alpha=0.5) for q in queries]
            for query, future in zip(queries, futures):
                result = future.result(timeout=30)
                want = reference.reverse_aknn(query, k=3, alpha=0.5, method="linear")
                assert result.object_ids == want.object_ids
            stats = service.stats()
            assert stats.batches_flushed == 1
            assert stats.max_batch_size == len(queries)

    def test_reverse_and_aknn_use_distinct_buckets(self, sharded, queries):
        with QueryService(sharded, window_ms=50.0, max_batch=32) as service:
            f_aknn = service.submit(queries[0], k=3, alpha=0.5)
            f_reverse = service.submit_reverse(queries[1], k=3, alpha=0.5)
            aknn_result = f_aknn.result(timeout=30)
            reverse_result = f_reverse.result(timeout=30)
            assert aknn_result.k == 3 and reverse_result.k == 3
            assert reverse_result.method == "batch"
            assert service.stats().batches_flushed == 2

    def test_reverse_sync_wrapper(self, sharded, reference, queries):
        with QueryService(sharded, window_ms=1.0) as service:
            result = service.reverse_aknn(queries[0], k=2, alpha=0.5, timeout=30)
            want = reference.reverse_aknn(queries[0], k=2, alpha=0.5, method="batch")
            assert result.object_ids == want.object_ids


class TestAdmissionControl:
    def test_overload_sheds_requests(self, sharded, queries):
        service = QueryService(
            sharded, window_ms=10_000.0, max_batch=1024, queue_depth=3
        )
        service.start()
        try:
            futures = [service.submit(queries[i], k=3, alpha=0.5) for i in range(3)]
            with pytest.raises(ServiceOverloadedError):
                service.submit(queries[3], k=3, alpha=0.5)
            stats = service.stats()
            assert stats.requests_shed == 1
            assert stats.counters.get("shed_requests") == 1
        finally:
            service.stop(drain=True)
        for future in futures:
            assert future.result(timeout=30) is not None

    def test_submit_after_stop_raises(self, sharded, queries):
        service = QueryService(sharded)
        service.start()
        service.stop()
        with pytest.raises(ServiceStoppedError):
            service.submit(queries[0], k=3, alpha=0.5)

    def test_stop_without_drain_fails_pending(self, sharded, queries):
        service = QueryService(sharded, window_ms=10_000.0, max_batch=1024)
        service.start()
        future = service.submit(queries[0], k=3, alpha=0.5)
        service.stop(drain=False)
        with pytest.raises(ServiceStoppedError):
            future.result(timeout=5)


class TestTelemetry:
    def test_latency_percentiles_populated(self, sharded, queries):
        with QueryService(sharded, window_ms=2.0) as service:
            for query in queries:
                service.aknn(query, k=3, alpha=0.5, timeout=30)
            stats = service.stats()
        assert stats.requests_completed == len(queries)
        assert stats.mean_latency_ms > 0.0
        assert stats.p99_latency_ms >= stats.p50_latency_ms > 0.0
        assert stats.coalesced_queries == len(queries)
        payload = stats.as_dict()
        assert payload["coalesced_batches"] == stats.batches_flushed


class TestLiveUpdatesThroughService:
    def test_insert_and_delete_affect_results(self, sharded, queries, rng):
        with QueryService(sharded, window_ms=2.0) as service:
            baseline = service.aknn(queries[0], k=3, alpha=0.5, timeout=30)
            # Drop a tight object on the query's centre: it must enter the
            # top-3 (ties at distance zero may rank it below an overlapping
            # incumbent, so membership is asserted, not rank).
            center = queries[0].support_mbr().center
            planted = make_fuzzy_object(rng, center=center, spread=0.01)
            planted_id = service.insert(planted)
            found = service.aknn(queries[0], k=3, alpha=0.5, timeout=30)
            assert planted_id in found.object_ids
            service.delete(planted_id)
            after = service.aknn(queries[0], k=3, alpha=0.5, timeout=30)
            assert planted_id not in after.object_ids
            assert set(after.object_ids) == set(baseline.object_ids)
            stats = service.stats()
            assert stats.counters.get("live_inserts") == 1
            assert stats.counters.get("live_deletes") == 1


class TestConcurrentClients:
    def test_many_threads_submit_correct_results(self, sharded, reference, queries):
        expected = {
            id(query): set(reference.aknn(query, k=5, alpha=0.5).object_ids)
            for query in queries
        }
        errors = []

        def client(index: int, service: QueryService) -> None:
            for i in range(6):
                query = queries[(index + i) % len(queries)]
                try:
                    result = service.aknn(query, k=5, alpha=0.5, timeout=60)
                    if set(result.object_ids) != expected[id(query)]:
                        errors.append((index, i, result.object_ids))
                except Exception as exc:  # noqa: BLE001 - collected for assert
                    errors.append((index, i, repr(exc)))

        with QueryService(sharded, window_ms=2.0, max_batch=8) as service:
            threads = [
                threading.Thread(target=client, args=(index, service))
                for index in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = service.stats()
        assert errors == []
        assert stats.requests_completed == 36
        assert stats.mean_batch_size >= 1.0

    def test_queries_concurrent_with_mutations(self, sharded, queries, rng):
        """Live churn while clients query: every future resolves correctly."""
        errors = []
        stop_flag = threading.Event()

        def mutator(service: QueryService) -> None:
            while not stop_flag.is_set():
                obj = make_fuzzy_object(rng, center=rng.random(2) * 8.0)
                object_id = service.insert(obj)
                time.sleep(0.001)
                service.delete(object_id)

        def client(service: QueryService) -> None:
            for i in range(10):
                try:
                    result = service.aknn(
                        queries[i % len(queries)], k=4, alpha=0.5, timeout=60
                    )
                    if len(result) != 4:
                        errors.append(("short", len(result)))
                except Exception as exc:  # noqa: BLE001
                    errors.append(repr(exc))

        with QueryService(sharded, window_ms=2.0) as service:
            mutator_thread = threading.Thread(target=mutator, args=(service,))
            clients = [
                threading.Thread(target=client, args=(service,)) for _ in range(3)
            ]
            mutator_thread.start()
            for thread in clients:
                thread.start()
            for thread in clients:
                thread.join()
            stop_flag.set()
            mutator_thread.join()
        assert errors == []
        sharded.validate()
