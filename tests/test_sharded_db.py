"""Parity tests for the sharded database.

The load-bearing property is that partitioning is invisible to results:
``ShardedDatabase`` must return the same neighbour sets / matches /
qualifying ranges as the single-tree ``FuzzyDatabase`` over the same
objects, for every placement policy, shard count and query type — including
after a mixed insert/delete workload applied to both sides.
"""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.aknn import AKNN_METHODS
from repro.core.database import FuzzyDatabase
from repro.datasets.builder import build_dataset
from repro.datasets.queries import generate_query_object
from repro.exceptions import (
    InvalidFuzzyObjectError,
    InvalidQueryError,
    ObjectNotFoundError,
)
from repro.service import ShardedDatabase
from repro.service.placement import HashPlacement, SpacePlacement, make_placement

from tests.conftest import assert_same_assignments, make_fuzzy_object

SHARD_COUNTS = (2, 3, 5)
PLACEMENTS = ("hash", "space")


@pytest.fixture(scope="module")
def objects():
    return build_dataset(
        kind="synthetic", n_objects=90, points_per_object=24, seed=31, space_size=9.0
    )


@pytest.fixture(scope="module")
def config():
    return RuntimeConfig(rtree_max_entries=8, cache_capacity=32)


@pytest.fixture(scope="module")
def reference(objects, config):
    database = FuzzyDatabase.build(list(objects), config=config)
    yield database
    database.close()


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(404)
    return [
        generate_query_object(rng, kind="synthetic", space_size=9.0, points_per_object=24)
        for _ in range(4)
    ]


def build_sharded(objects, config, n_shards, placement):
    return ShardedDatabase.build(
        list(objects), n_shards=n_shards, placement=placement, config=config
    )


class TestPlacementPolicies:
    def test_hash_placement_is_deterministic_and_in_range(self):
        policy = HashPlacement(4)
        shards = [policy.shard_for(i) for i in range(100)]
        assert shards == [policy.shard_for(i) for i in range(100)]
        assert set(shards) == {0, 1, 2, 3}

    def test_space_placement_stripes_the_axis(self):
        centers = np.linspace(0.0, 10.0, 100).reshape(-1, 1)
        policy = SpacePlacement.fit(centers, 4)
        assert policy.shard_for(0, np.array([0.1])) == 0
        assert policy.shard_for(1, np.array([9.9])) == 3
        assigned = [policy.shard_for(i, c) for i, c in enumerate(centers)]
        assert assigned == sorted(assigned)  # monotone along the axis

    def test_space_placement_requires_center(self):
        policy = SpacePlacement.fit(np.linspace(0, 1, 10).reshape(-1, 1), 2)
        with pytest.raises(ValueError):
            policy.shard_for(3, None)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_placement("nope", 2)

    @pytest.mark.parametrize("placement", PLACEMENTS)
    def test_shards_are_reasonably_balanced(self, objects, config, placement):
        sharded = build_sharded(objects, config, 3, placement)
        sizes = sharded.shard_sizes()
        assert sum(sizes) == len(objects)
        assert min(sizes) >= len(objects) // 6  # no shard starves
        sharded.close()


class TestQueryParity:
    @pytest.mark.parametrize("placement", PLACEMENTS)
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("method", AKNN_METHODS)
    def test_aknn_parity(
        self, objects, config, reference, queries, placement, n_shards, method
    ):
        sharded = build_sharded(objects, config, n_shards, placement)
        for query in queries:
            got = sharded.aknn(query, k=7, alpha=0.5, method=method)
            want = reference.aknn(query, k=7, alpha=0.5, method=method)
            assert set(got.object_ids) == set(want.object_ids)
            for neighbor in got.neighbors:
                assert neighbor.distance is not None  # merge is exact
        sharded.close()

    @pytest.mark.parametrize("placement", PLACEMENTS)
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_batch_parity(self, objects, config, reference, queries, placement, n_shards):
        sharded = build_sharded(objects, config, n_shards, placement)
        batch = sharded.aknn_batch(queries, k=6, alpha=0.45)
        assert len(batch) == len(queries)
        for query, result in zip(queries, batch.results):
            want = reference.aknn(query, k=6, alpha=0.45)
            assert set(result.object_ids) == set(want.object_ids)
        sharded.close()

    @pytest.mark.parametrize("placement", PLACEMENTS)
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_range_parity(self, objects, config, reference, queries, placement, n_shards):
        sharded = build_sharded(objects, config, n_shards, placement)
        got = sharded.range_search(queries[0], alpha=0.5, radius=1.5)
        want = reference.range_search(queries[0], alpha=0.5, radius=1.5)
        assert got.matches == want.matches
        sharded.close()

    @pytest.mark.parametrize("placement", PLACEMENTS)
    @pytest.mark.parametrize("n_shards", (2, 4))
    @pytest.mark.parametrize("method", ["linear", "pruned", "batch"])
    def test_reverse_aknn_parity(
        self, objects, config, reference, queries, placement, n_shards, method
    ):
        """Sharded reverse AKNN returns the single-tree answer for every
        method, placement and shard count."""
        sharded = build_sharded(objects, config, n_shards, placement)
        try:
            for query in queries[:2]:
                for k in (1, 4):
                    want = reference.reverse_aknn(
                        query, k=k, alpha=0.5, method="linear"
                    )
                    got = sharded.reverse_aknn(query, k=k, alpha=0.5, method=method)
                    assert got.object_ids == want.object_ids
                    for object_id in got.object_ids:
                        assert got.distances[object_id] == pytest.approx(
                            want.distances[object_id]
                        )
        finally:
            sharded.close()

    def test_reverse_aknn_batch_bucket_parity(
        self, objects, config, reference, queries
    ):
        sharded = build_sharded(objects, config, 3, "hash")
        try:
            results = sharded.reverse_aknn_batch(queries, k=3, alpha=0.5)
            assert len(results) == len(queries)
            for query, got in zip(queries, results):
                want = reference.reverse_aknn(query, k=3, alpha=0.5, method="batch")
                assert got.object_ids == want.object_ids
        finally:
            sharded.close()

    def test_reverse_aknn_invalid_arguments(self, objects, config, queries):
        sharded = build_sharded(objects, config, 2, "hash")
        try:
            with pytest.raises(InvalidQueryError):
                sharded.reverse_aknn(queries[0], k=0, alpha=0.5)
            with pytest.raises(InvalidQueryError):
                sharded.reverse_aknn(queries[0], k=2, alpha=0.0)
            with pytest.raises(InvalidQueryError):
                sharded.reverse_aknn(queries[0], k=2, alpha=0.5, method="bogus")
        finally:
            sharded.close()

    @pytest.mark.parametrize("placement", PLACEMENTS)
    @pytest.mark.parametrize("method", ("basic", "rss", "rss_icr"))
    def test_rknn_parity(self, objects, config, reference, queries, placement, method):
        sharded = build_sharded(objects, config, 3, placement)
        got = sharded.rknn(queries[1], k=4, alpha_range=(0.3, 0.6), method=method)
        want = reference.rknn(queries[1], k=4, alpha_range=(0.3, 0.6), method=method)
        assert_same_assignments(got.assignments, want.assignments)
        sharded.close()

    def test_k_larger_than_database(self, objects, config, queries):
        sharded = build_sharded(objects, config, 3, "hash")
        result = sharded.aknn(queries[0], k=len(objects) + 5, alpha=0.5)
        assert len(result) == len(objects)
        sharded.close()

    def test_invalid_arguments_rejected(self, objects, config, queries):
        sharded = build_sharded(objects, config, 2, "hash")
        with pytest.raises(InvalidQueryError):
            sharded.aknn(queries[0], k=0, alpha=0.5)
        with pytest.raises(InvalidQueryError):
            sharded.aknn(queries[0], k=3, alpha=0.5, method="nope")
        sharded.close()


class TestLiveWorkloadParity:
    @pytest.mark.parametrize("placement", PLACEMENTS)
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_mixed_insert_delete_workload(
        self, objects, config, queries, placement, n_shards
    ):
        """Apply one interleaved insert/delete stream to both databases."""
        rng = np.random.default_rng(77)
        sharded = build_sharded(objects, config, n_shards, placement)
        mirror = FuzzyDatabase.build(list(objects), config=config)
        epoch_before = sharded.epoch

        alive = list(sharded.object_ids())
        for step in range(25):
            if step % 3 == 2:
                victim = alive.pop(int(rng.integers(0, len(alive))))
                sharded.delete(victim)
                mirror.delete(victim)
            else:
                obj = make_fuzzy_object(rng, center=rng.random(2) * 9.0)
                new_id = sharded.insert(obj)
                mirror_id = mirror.insert(obj.with_id(new_id))
                assert mirror_id == new_id
                alive.append(new_id)
        sharded.validate()
        assert sharded.epoch > epoch_before
        assert sorted(sharded.object_ids()) == sorted(mirror.object_ids())

        for query in queries[:2]:
            for method in ("basic", "lb_lp_ub"):
                got = sharded.aknn(query, k=6, alpha=0.5, method=method)
                want = mirror.aknn(query, k=6, alpha=0.5, method=method)
                assert set(got.object_ids) == set(want.object_ids)
            got_range = sharded.range_search(query, alpha=0.5, radius=1.4)
            want_range = mirror.range_search(query, alpha=0.5, radius=1.4)
            assert got_range.matches == want_range.matches
        got_rknn = sharded.rknn(queries[0], k=4, alpha_range=(0.35, 0.65))
        want_rknn = mirror.rknn(queries[0], k=4, alpha_range=(0.35, 0.65))
        assert_same_assignments(got_rknn.assignments, want_rknn.assignments)
        # Reverse AKNN stays exact after churn, for every method.
        for method in ("linear", "pruned", "batch"):
            got_reverse = sharded.reverse_aknn(
                queries[0], k=3, alpha=0.5, method=method
            )
            want_reverse = mirror.reverse_aknn(
                queries[0], k=3, alpha=0.5, method="linear"
            )
            assert got_reverse.object_ids == want_reverse.object_ids
        sharded.close()
        mirror.close()

    def test_delete_unknown_raises(self, objects, config):
        sharded = build_sharded(objects, config, 2, "hash")
        with pytest.raises(ObjectNotFoundError):
            sharded.delete(99_999)
        sharded.close()

    def test_duplicate_explicit_id_rejected(self, objects, config, rng):
        sharded = build_sharded(objects, config, 2, "hash")
        taken = sharded.object_ids()[0]
        from repro.exceptions import StorageError

        with pytest.raises(StorageError):
            sharded.insert(make_fuzzy_object(rng, object_id=taken))
        sharded.close()


class TestGeometryValidation:
    """Regressions for NaN / non-finite geometry routing (PR 3 satellite)."""

    def test_space_placement_rejects_non_finite_centres(self):
        policy = SpacePlacement.fit(np.arange(20.0).reshape(-1, 1), 4)
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="finite"):
                policy.shard_for(7, [bad, 0.0])
        # Finite centres still route normally.
        assert 0 <= policy.shard_for(7, [4.0, 0.0]) < 4

    @pytest.mark.parametrize("placement", PLACEMENTS)
    def test_insert_rejects_non_finite_geometry(self, objects, config, placement):
        """A non-finite support centre must be rejected before the owner map
        or id watermark are touched, for every placement policy."""
        sharded = build_sharded(objects, config, 3, placement)
        try:
            size_before = len(sharded)
            ids_before = sharded.object_ids()
            poisoned = make_fuzzy_object(np.random.default_rng(9), center=[1.0, 1.0])
            poisoned.points[0, 0] = np.nan  # bypasses construction validation
            with pytest.raises(InvalidFuzzyObjectError, match="non-finite"):
                sharded.insert(poisoned)
            assert len(sharded) == size_before
            assert sharded.object_ids() == ids_before
            sharded.validate()
            # The id watermark did not advance for the rejected insert.
            clean = make_fuzzy_object(np.random.default_rng(10), center=[1.0, 1.0])
            assert sharded.insert(clean) == max(ids_before) + 1
        finally:
            sharded.close()

    def test_unsharded_insert_rejects_non_finite_geometry(self, objects, config):
        """The same chokepoint guards the plain FuzzyDatabase insert path."""
        database = FuzzyDatabase.build(list(objects), config=config)
        try:
            size_before = len(database)
            poisoned = make_fuzzy_object(np.random.default_rng(9), center=[1.0, 1.0])
            poisoned.points[0, 0] = np.nan
            with pytest.raises(InvalidFuzzyObjectError, match="non-finite"):
                database.insert(poisoned)
            assert len(database) == size_before
            database.validate()
        finally:
            database.close()


class TestTelemetry:
    def test_fanout_counter_and_stats(self, objects, config, queries):
        sharded = build_sharded(objects, config, 3, "hash")
        result = sharded.aknn(queries[0], k=5, alpha=0.5)
        assert result.stats.extra["shard_fanouts"] == 3.0
        assert sharded.metrics.get("shard_fanouts") >= 3
        batch = sharded.aknn_batch(queries, k=5, alpha=0.5)
        assert batch.stats.extra["shard_fanouts"] == 3.0
        assert batch.stats.aknn_calls == len(queries)
        sharded.close()
