"""Unit tests for the object store (in-memory and on-disk modes)."""

import numpy as np
import pytest

from repro.exceptions import ObjectNotFoundError, StorageError
from repro.storage.object_store import ObjectStore
from tests.conftest import make_fuzzy_object


@pytest.fixture(params=["memory", "disk"])
def store(request, tmp_path):
    """One store per backing mode, closed after the test."""
    path = None if request.param == "memory" else tmp_path / "objects.dat"
    store = ObjectStore(path=path)
    yield store
    store.close()


class TestPutGet:
    def test_put_assigns_sequential_ids(self, store, rng):
        ids = [store.put(make_fuzzy_object(rng)) for _ in range(3)]
        assert ids == [0, 1, 2]

    def test_put_respects_explicit_id(self, store, rng):
        assert store.put(make_fuzzy_object(rng, object_id=42)) == 42

    def test_duplicate_id_rejected(self, store, rng):
        store.put(make_fuzzy_object(rng, object_id=7))
        with pytest.raises(StorageError):
            store.put(make_fuzzy_object(rng, object_id=7))

    def test_get_roundtrip(self, store, rng):
        obj = make_fuzzy_object(rng, object_id=5)
        store.put(obj)
        loaded = store.get(5)
        np.testing.assert_allclose(loaded.points, obj.points)
        np.testing.assert_allclose(loaded.memberships, obj.memberships)
        assert loaded.object_id == 5

    def test_get_missing_raises(self, store):
        with pytest.raises(ObjectNotFoundError):
            store.get(123)

    def test_get_many(self, store, rng):
        for i in range(4):
            store.put(make_fuzzy_object(rng, object_id=i))
        objects = store.get_many([3, 1])
        assert [o.object_id for o in objects] == [3, 1]

    def test_contains_len_ids(self, store, rng):
        store.put(make_fuzzy_object(rng, object_id=2))
        store.put(make_fuzzy_object(rng, object_id=9))
        assert 2 in store and 9 in store and 5 not in store
        assert len(store) == 2
        assert store.object_ids() == [2, 9]

    def test_build_classmethod(self, rng):
        objects = [make_fuzzy_object(rng, object_id=i) for i in range(5)]
        store = ObjectStore.build(objects)
        assert len(store) == 5
        store.close()


class TestAccessCounting:
    def test_each_get_counts_one_access(self, store, rng):
        store.put(make_fuzzy_object(rng, object_id=0))
        store.put(make_fuzzy_object(rng, object_id=1))
        store.get(0)
        store.get(0)
        store.get(1)
        assert store.access_count == 3
        assert store.statistics.physical_reads == 3

    def test_reset_statistics(self, store, rng):
        store.put(make_fuzzy_object(rng, object_id=0))
        store.get(0)
        store.reset_statistics()
        assert store.access_count == 0

    def test_put_does_not_count_accesses(self, store, rng):
        store.put(make_fuzzy_object(rng, object_id=0))
        assert store.access_count == 0
        assert store.statistics.bytes_written > 0

    def test_cache_reduces_physical_reads_but_not_accesses(self, rng, tmp_path):
        store = ObjectStore(path=tmp_path / "cached.dat", cache_capacity=4)
        store.put(make_fuzzy_object(rng, object_id=0))
        store.get(0)
        store.get(0)
        assert store.access_count == 2
        assert store.statistics.physical_reads == 1
        assert store.statistics.cache_hits == 1
        store.close()

    def test_iter_objects_can_skip_accounting(self, store, rng):
        for i in range(3):
            store.put(make_fuzzy_object(rng, object_id=i))
        list(store.iter_objects(count_accesses=False))
        assert store.access_count == 0
        list(store.iter_objects(count_accesses=True))
        assert store.access_count == 3

    def test_snapshot_is_immutable_copy(self, store, rng):
        store.put(make_fuzzy_object(rng, object_id=0))
        snap = store.statistics.snapshot()
        store.get(0)
        assert snap.object_accesses == 0
        assert store.statistics.object_accesses == 1


class TestPersistence:
    def test_reopen_existing_file(self, rng, tmp_path):
        path = tmp_path / "objects.dat"
        store = ObjectStore(path=path)
        objects = [make_fuzzy_object(rng, object_id=i) for i in range(3)]
        for obj in objects:
            store.put(obj)
        table = store.slot_table()
        store.close()

        reopened = ObjectStore.open_existing(path, table)
        for obj in objects:
            loaded = reopened.get(obj.object_id)
            np.testing.assert_allclose(loaded.points, obj.points)
        reopened.close()

    def test_size_on_disk(self, store, rng):
        store.put(make_fuzzy_object(rng, object_id=0, n_points=10))
        store.put(make_fuzzy_object(rng, object_id=1, n_points=20))
        assert store.size_on_disk() == store.statistics.bytes_written

    def test_closed_store_rejects_operations(self, rng, tmp_path):
        store = ObjectStore(path=tmp_path / "x.dat")
        store.put(make_fuzzy_object(rng, object_id=0))
        store.close()
        with pytest.raises(StorageError):
            store.get(0)
        with pytest.raises(StorageError):
            store.put(make_fuzzy_object(rng, object_id=1))

    def test_context_manager_closes(self, rng, tmp_path):
        with ObjectStore(path=tmp_path / "y.dat") as store:
            store.put(make_fuzzy_object(rng, object_id=0))
        with pytest.raises(StorageError):
            store.get(0)


class TestGetManyDeduplication:
    def test_duplicate_ids_fetch_once(self, store, rng):
        for i in range(4):
            store.put(make_fuzzy_object(rng, object_id=i))
        objects = store.get_many([2, 0, 2, 1, 0, 2])
        assert [o.object_id for o in objects] == [2, 0, 2, 1, 0, 2]
        # Three distinct ids -> three accesses and three physical reads,
        # regardless of how often each id repeats in the request.
        assert store.access_count == 3
        assert store.statistics.physical_reads == 3

    def test_duplicates_share_the_same_instance(self, store, rng):
        store.put(make_fuzzy_object(rng, object_id=0))
        first, second = store.get_many([0, 0])
        assert first is second


class TestDeletion:
    def test_delete_removes_object(self, store, rng):
        store.put(make_fuzzy_object(rng, object_id=0))
        store.put(make_fuzzy_object(rng, object_id=1))
        store.delete(0)
        assert len(store) == 1
        assert 0 not in store
        with pytest.raises(ObjectNotFoundError):
            store.get(0)
        assert store.statistics.deletes == 1

    def test_delete_missing_raises(self, store):
        with pytest.raises(ObjectNotFoundError):
            store.delete(5)

    def test_deleted_ids_never_reassigned(self, store, rng):
        ids = [store.put(make_fuzzy_object(rng)) for _ in range(3)]
        store.delete(ids[-1])
        new_id = store.put(make_fuzzy_object(rng))
        assert new_id == ids[-1] + 1

    def test_delete_evicts_cached_copy(self, rng, tmp_path):
        store = ObjectStore(path=tmp_path / "del.dat", cache_capacity=4)
        store.put(make_fuzzy_object(rng, object_id=0))
        store.get(0)  # populate the buffer pool
        store.delete(0)
        with pytest.raises(ObjectNotFoundError):
            store.get(0)
        store.close()
