"""Unit tests for MBRs and the MinDist / MaxDist metrics (Equations 1 and 3)."""

import math

import numpy as np
import pytest

from repro.geometry.mbr import MBR, max_dist, min_dist


class TestConstruction:
    def test_from_bounds(self):
        box = MBR([0.0, 1.0], [2.0, 3.0])
        assert box.dimensions == 2
        assert np.allclose(box.lower, [0.0, 1.0])
        assert np.allclose(box.upper, [2.0, 3.0])

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            MBR([1.0, 0.0], [0.0, 1.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            MBR([0.0], [1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MBR([], [])

    def test_from_points(self):
        points = np.array([[0.0, 5.0], [2.0, 1.0], [1.0, 3.0]])
        box = MBR.from_points(points)
        assert np.allclose(box.lower, [0.0, 1.0])
        assert np.allclose(box.upper, [2.0, 5.0])

    def test_from_points_rejects_empty(self):
        with pytest.raises(ValueError):
            MBR.from_points(np.empty((0, 2)))

    def test_from_point_is_degenerate(self):
        box = MBR.from_point([3.0, 4.0])
        assert box.area() == 0.0
        assert box.contains_point([3.0, 4.0])

    def test_union_of(self):
        a = MBR([0, 0], [1, 1])
        b = MBR([2, 2], [3, 3])
        union = MBR.union_of([a, b])
        assert np.allclose(union.lower, [0, 0])
        assert np.allclose(union.upper, [3, 3])

    def test_union_of_empty_raises(self):
        with pytest.raises(ValueError):
            MBR.union_of([])


class TestProperties:
    def test_center_extent_area_margin(self):
        box = MBR([0.0, 0.0], [2.0, 4.0])
        assert np.allclose(box.center, [1.0, 2.0])
        assert np.allclose(box.extent, [2.0, 4.0])
        assert box.area() == pytest.approx(8.0)
        assert box.margin() == pytest.approx(6.0)

    def test_contains_point_boundary_inclusive(self):
        box = MBR([0.0, 0.0], [1.0, 1.0])
        assert box.contains_point([0.0, 1.0])
        assert not box.contains_point([1.0001, 0.5])

    def test_contains_other_box(self):
        outer = MBR([0, 0], [10, 10])
        inner = MBR([2, 2], [3, 3])
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_intersects(self):
        a = MBR([0, 0], [2, 2])
        b = MBR([1, 1], [3, 3])
        c = MBR([5, 5], [6, 6])
        assert a.intersects(b)
        assert b.intersects(a)
        assert not a.intersects(c)

    def test_intersects_touching_boundary(self):
        a = MBR([0, 0], [1, 1])
        b = MBR([1, 1], [2, 2])
        assert a.intersects(b)


class TestCombination:
    def test_union(self):
        a = MBR([0, 0], [1, 1])
        b = MBR([2, -1], [3, 0.5])
        union = a.union(b)
        assert np.allclose(union.lower, [0, -1])
        assert np.allclose(union.upper, [3, 1])

    def test_enlargement(self):
        a = MBR([0, 0], [1, 1])
        b = MBR([0, 0], [2, 1])
        assert a.enlargement(b) == pytest.approx(1.0)
        assert b.enlargement(a) == pytest.approx(0.0)

    def test_intersection(self):
        a = MBR([0, 0], [2, 2])
        b = MBR([1, 1], [3, 3])
        overlap = a.intersection(b)
        assert overlap is not None
        assert np.allclose(overlap.lower, [1, 1])
        assert np.allclose(overlap.upper, [2, 2])

    def test_intersection_disjoint_returns_none(self):
        a = MBR([0, 0], [1, 1])
        b = MBR([5, 5], [6, 6])
        assert a.intersection(b) is None

    def test_expanded(self):
        box = MBR([0, 0], [1, 1]).expanded(0.5)
        assert np.allclose(box.lower, [-0.5, -0.5])
        assert np.allclose(box.upper, [1.5, 1.5])

    def test_expanded_negative_too_far_raises(self):
        with pytest.raises(ValueError):
            MBR([0, 0], [1, 1]).expanded(-1.0)


class TestDistances:
    def test_min_dist_overlapping_is_zero(self):
        a = MBR([0, 0], [2, 2])
        b = MBR([1, 1], [3, 3])
        assert min_dist(a, b) == 0.0

    def test_min_dist_axis_separated(self):
        a = MBR([0, 0], [1, 1])
        b = MBR([3, 0], [4, 1])
        assert min_dist(a, b) == pytest.approx(2.0)

    def test_min_dist_diagonal(self):
        a = MBR([0, 0], [1, 1])
        b = MBR([2, 2], [3, 3])
        assert min_dist(a, b) == pytest.approx(math.sqrt(2.0))

    def test_max_dist_between_far_corners(self):
        a = MBR([0, 0], [1, 1])
        b = MBR([2, 2], [3, 3])
        assert max_dist(a, b) == pytest.approx(math.sqrt(18.0))

    def test_max_dist_of_identical_box_is_diagonal(self):
        a = MBR([0, 0], [1, 1])
        assert max_dist(a, a) == pytest.approx(math.sqrt(2.0))

    def test_min_le_max(self, rng):
        for _ in range(50):
            a = MBR.from_points(rng.random((5, 3)) * 10)
            b = MBR.from_points(rng.random((5, 3)) * 10)
            assert min_dist(a, b) <= max_dist(a, b) + 1e-12

    def test_point_distances(self):
        box = MBR([0, 0], [2, 2])
        assert box.min_dist_point([1, 1]) == 0.0
        assert box.min_dist_point([4, 1]) == pytest.approx(2.0)
        assert box.max_dist_point([1, 1]) == pytest.approx(math.sqrt(2.0))
        assert box.max_dist_point([3, 3]) == pytest.approx(math.sqrt(18.0))

    def test_method_wrappers_match_functions(self):
        a = MBR([0, 0], [1, 1])
        b = MBR([2, 3], [4, 5])
        assert a.min_dist(b) == min_dist(a, b)
        assert a.max_dist(b) == max_dist(a, b)

    def test_mindist_bounds_pointwise_distance(self, rng):
        """MinDist lower-bounds and MaxDist upper-bounds any point pair distance."""
        for _ in range(20):
            pts_a = rng.random((10, 2)) * 5
            pts_b = rng.random((10, 2)) * 5 + 3
            a, b = MBR.from_points(pts_a), MBR.from_points(pts_b)
            pairwise = np.linalg.norm(pts_a[:, None, :] - pts_b[None, :, :], axis=2)
            assert min_dist(a, b) <= pairwise.min() + 1e-9
            assert max_dist(a, b) >= pairwise.max() - 1e-9


class TestSerialisationAndDunder:
    def test_roundtrip_array(self):
        box = MBR([0.5, -1.0], [2.5, 4.0])
        assert MBR.from_array(box.to_array()) == box

    def test_from_array_rejects_odd_length(self):
        with pytest.raises(ValueError):
            MBR.from_array([1.0, 2.0, 3.0])

    def test_equality_and_hash(self):
        a = MBR([0, 0], [1, 1])
        b = MBR([0, 0], [1, 1])
        c = MBR([0, 0], [2, 1])
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_repr(self):
        assert "MBR" in repr(MBR([0, 0], [1, 1]))
