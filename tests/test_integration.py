"""End-to-end integration tests across modules.

These run the complete pipeline — generate a dataset, build and persist a
database, answer AKNN / RKNN queries with every method — and cross-check all
methods against the linear scan on fresh random data (several seeds), which is
the strongest single consistency guarantee the suite provides.
"""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.aknn import AKNN_METHODS
from repro.core.database import FuzzyDatabase
from repro.datasets.builder import build_dataset
from repro.datasets.queries import generate_query_object
from tests.conftest import assert_same_assignments, sorted_exact_distances


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("kind", ["synthetic", "cells"])
def test_all_methods_agree_on_random_datasets(seed, kind):
    """AKNN and RKNN methods all agree with the linear scan on random data."""
    space = 6.0
    objects = build_dataset(
        kind=kind, n_objects=40, points_per_object=30, seed=seed, space_size=space
    )
    database = FuzzyDatabase.build(objects, config=RuntimeConfig(rtree_max_entries=8))
    rng = np.random.default_rng(seed + 100)
    query = generate_query_object(rng, kind=kind, space_size=space, points_per_object=30)

    # AKNN: distance multisets must match the linear scan for every method.
    k, alpha = 6, 0.55
    truth = database.linear_scan().aknn(query, k=k, alpha=alpha)
    expected = sorted(n.distance for n in truth.neighbors)
    for method in AKNN_METHODS:
        result = database.aknn(query, k=k, alpha=alpha, method=method)
        actual = sorted_exact_distances(database, result, query, alpha)
        np.testing.assert_allclose(actual, expected, atol=1e-9)

    # RKNN: qualifying ranges must match the exhaustive sweep.
    rknn_truth = database.linear_scan().rknn(query, k=4, alpha_range=(0.35, 0.75))
    for method in ("basic", "rss", "rss_icr"):
        result = database.rknn(query, k=4, alpha_range=(0.35, 0.75), method=method)
        assert_same_assignments(result.assignments, rknn_truth.assignments)
    database.close()


def test_full_pipeline_with_persistence(tmp_path):
    """Generate -> build on disk -> save -> reopen -> query -> consistent."""
    objects = build_dataset(
        kind="synthetic", n_objects=35, points_per_object=25, seed=9, space_size=6.0
    )
    path = tmp_path / "pipeline_db"
    database = FuzzyDatabase.build(objects, path=path)
    database.save(path)

    rng = np.random.default_rng(4)
    query = generate_query_object(rng, kind="synthetic", space_size=6.0, points_per_object=25)
    before = sorted(database.aknn(query, k=5, alpha=0.5, method="lb").object_ids)
    truth = database.linear_scan().rknn(query, k=3, alpha_range=(0.4, 0.7))
    database.close()

    reopened = FuzzyDatabase.open(path)
    reopened.validate()
    after = sorted(reopened.aknn(query, k=5, alpha=0.5, method="lb").object_ids)
    assert after == before
    rknn = reopened.rknn(query, k=3, alpha_range=(0.4, 0.7), method="rss_icr")
    assert_same_assignments(rknn.assignments, truth.assignments)
    reopened.close()


def test_cost_trends_match_paper_shape():
    """The qualitative cost relationships of the evaluation hold end to end:

    * every optimisation level accesses no more objects than the basic AKNN,
    * RSS accesses at least an order of magnitude fewer objects than the basic
      RKNN sweep on a dense dataset,
    * RSS-ICR performs no more refinement steps than RSS.
    """
    objects = build_dataset(
        kind="synthetic", n_objects=150, points_per_object=40, seed=21, space_size=5.5
    )
    database = FuzzyDatabase.build(objects, config=RuntimeConfig(rtree_max_entries=16))
    rng = np.random.default_rng(77)
    queries = [
        generate_query_object(rng, kind="synthetic", space_size=5.5, points_per_object=40)
        for _ in range(2)
    ]

    aknn_totals = {method: 0 for method in AKNN_METHODS}
    for query in queries:
        for method in AKNN_METHODS:
            result = database.aknn(query, k=10, alpha=0.7, method=method)
            aknn_totals[method] += result.stats.object_accesses
    assert aknn_totals["lb"] <= aknn_totals["basic"]
    assert aknn_totals["lb_lp"] <= aknn_totals["basic"]
    assert aknn_totals["lb_lp_ub"] <= aknn_totals["basic"]

    basic_accesses = 0
    rss_accesses = 0
    rss_steps = 0
    icr_steps = 0
    for query in queries:
        basic_accesses += database.rknn(
            query, k=10, alpha_range=(0.3, 0.7), method="basic"
        ).stats.object_accesses
        rss_result = database.rknn(query, k=10, alpha_range=(0.3, 0.7), method="rss")
        rss_accesses += rss_result.stats.object_accesses
        rss_steps += rss_result.stats.refinement_steps
        icr_steps += database.rknn(
            query, k=10, alpha_range=(0.3, 0.7), method="rss_icr"
        ).stats.refinement_steps
    assert rss_accesses * 3 <= basic_accesses  # well below the basic sweep
    assert icr_steps <= rss_steps
    database.close()


def test_public_api_importable():
    """Everything advertised in ``repro.__all__`` resolves to a real object."""
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None
