"""Unit tests for the fuzzy object model (Definitions 1 and 2)."""

import numpy as np
import pytest

from repro.exceptions import EmptyAlphaCutError, InvalidFuzzyObjectError
from repro.fuzzy.fuzzy_object import FuzzyObject


def simple_object():
    points = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [3.0, 0.0]])
    memberships = np.array([1.0, 0.7, 0.4, 0.1])
    return FuzzyObject(points, memberships, object_id=1)


class TestConstruction:
    def test_basic(self):
        obj = simple_object()
        assert obj.size == 4
        assert obj.dimensions == 2
        assert obj.object_id == 1
        assert obj.has_kernel

    def test_rejects_empty_points(self):
        with pytest.raises(InvalidFuzzyObjectError):
            FuzzyObject(np.empty((0, 2)), np.empty(0))

    def test_rejects_membership_shape_mismatch(self):
        with pytest.raises(InvalidFuzzyObjectError):
            FuzzyObject(np.zeros((3, 2)), np.array([1.0, 0.5]))

    def test_rejects_zero_membership(self):
        with pytest.raises(InvalidFuzzyObjectError):
            FuzzyObject(np.zeros((2, 2)), np.array([1.0, 0.0]))

    def test_rejects_membership_above_one(self):
        with pytest.raises(InvalidFuzzyObjectError):
            FuzzyObject(np.zeros((2, 2)), np.array([1.0, 1.5]))

    def test_rejects_non_finite_points(self):
        with pytest.raises(InvalidFuzzyObjectError):
            FuzzyObject(np.array([[np.inf, 0.0]]), np.array([1.0]))

    def test_requires_kernel_by_default(self):
        with pytest.raises(InvalidFuzzyObjectError):
            FuzzyObject(np.zeros((2, 2)), np.array([0.5, 0.6]))

    def test_kernel_requirement_can_be_waived(self):
        obj = FuzzyObject(np.zeros((2, 2)), np.array([0.5, 0.6]), require_kernel=False)
        assert not obj.has_kernel

    def test_from_pairs(self):
        obj = FuzzyObject.from_pairs([([0.0, 0.0], 1.0), ([1.0, 1.0], 0.5)])
        assert obj.size == 2
        assert obj.memberships[0] == 1.0

    def test_from_pairs_empty_raises(self):
        with pytest.raises(InvalidFuzzyObjectError):
            FuzzyObject.from_pairs([])

    def test_crisp_and_single_point(self):
        crisp = FuzzyObject.crisp(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert np.all(crisp.memberships == 1.0)
        single = FuzzyObject.single_point([5.0, 6.0])
        assert single.size == 1
        assert single.dimensions == 2

    def test_with_id(self):
        obj = simple_object().with_id(42)
        assert obj.object_id == 42

    def test_roundtrip_dict(self):
        obj = simple_object()
        clone = FuzzyObject.from_dict(obj.to_dict())
        assert clone == obj


class TestFuzzySetOperations:
    def test_support_is_all_points(self):
        obj = simple_object()
        assert obj.support().shape == (4, 2)

    def test_kernel_only_full_membership(self):
        obj = simple_object()
        kernel = obj.kernel()
        assert kernel.shape == (1, 2)
        assert np.allclose(kernel[0], [0.0, 0.0])

    def test_alpha_cut_thresholds(self):
        obj = simple_object()
        assert obj.alpha_cut(0.05).shape[0] == 4
        assert obj.alpha_cut(0.4).shape[0] == 3
        assert obj.alpha_cut(0.5).shape[0] == 2
        assert obj.alpha_cut(1.0).shape[0] == 1

    def test_alpha_cut_includes_threshold_value(self):
        obj = simple_object()
        # membership exactly 0.7 must be included in the 0.7-cut
        assert obj.alpha_cut(0.7).shape[0] == 2

    def test_alpha_cut_size(self):
        obj = simple_object()
        for alpha in (0.1, 0.4, 0.7, 1.0):
            assert obj.alpha_cut_size(alpha) == obj.alpha_cut(alpha).shape[0]

    def test_alpha_cut_is_nested(self):
        obj = simple_object()
        low = {tuple(p) for p in obj.alpha_cut(0.2)}
        high = {tuple(p) for p in obj.alpha_cut(0.8)}
        assert high <= low

    def test_invalid_alpha_raises(self):
        obj = simple_object()
        with pytest.raises(InvalidFuzzyObjectError):
            obj.alpha_cut(0.0)
        with pytest.raises(InvalidFuzzyObjectError):
            obj.alpha_cut(1.5)

    def test_empty_cut_raises(self):
        obj = FuzzyObject(np.zeros((2, 2)), np.array([0.3, 0.4]), require_kernel=False)
        with pytest.raises(EmptyAlphaCutError):
            obj.alpha_cut(0.9)

    def test_distinct_memberships_sorted(self):
        obj = simple_object()
        levels = obj.distinct_memberships()
        assert np.all(np.diff(levels) > 0)
        assert set(levels) == {0.1, 0.4, 0.7, 1.0}


class TestBoundingBoxes:
    def test_support_mbr_encloses_all_points(self):
        obj = simple_object()
        mbr = obj.support_mbr()
        assert np.allclose(mbr.lower, [0.0, 0.0])
        assert np.allclose(mbr.upper, [3.0, 0.0])

    def test_kernel_mbr(self):
        obj = simple_object()
        mbr = obj.kernel_mbr()
        assert np.allclose(mbr.lower, [0.0, 0.0])
        assert np.allclose(mbr.upper, [0.0, 0.0])

    def test_alpha_mbr_shrinks(self):
        obj = simple_object()
        low = obj.alpha_mbr(0.1)
        high = obj.alpha_mbr(0.7)
        assert low.contains(high)

    def test_kernel_mbr_missing_kernel_raises(self):
        obj = FuzzyObject(np.zeros((2, 2)), np.array([0.3, 0.4]), require_kernel=False)
        with pytest.raises(EmptyAlphaCutError):
            obj.kernel_mbr()


class TestSamplingAndTransforms:
    def test_representative_point_is_in_kernel(self, rng):
        obj = simple_object()
        rep = obj.representative_point(rng)
        assert np.allclose(rep, [0.0, 0.0])

    def test_representative_deterministic_without_rng(self):
        obj = simple_object()
        assert np.allclose(obj.representative_point(), obj.kernel()[0])

    def test_sample_alpha_cut_subset(self, rng):
        obj = simple_object()
        sample = obj.sample_alpha_cut(0.1, 2, rng)
        assert sample.shape == (2, 2)
        cut = {tuple(p) for p in obj.alpha_cut(0.1)}
        assert all(tuple(p) in cut for p in sample)

    def test_sample_returns_all_when_fewer_than_requested(self):
        obj = simple_object()
        sample = obj.sample_alpha_cut(0.9, 10)
        assert sample.shape[0] == obj.alpha_cut_size(0.9)

    def test_normalize_memberships(self):
        obj = FuzzyObject(
            np.zeros((3, 2)), np.array([0.2, 0.4, 0.8]), require_kernel=False
        )
        normalized = obj.normalize_memberships()
        assert normalized.memberships.max() == pytest.approx(1.0)
        assert normalized.has_kernel

    def test_translated(self):
        obj = simple_object().translated([1.0, 2.0])
        assert np.allclose(obj.points[0], [1.0, 2.0])

    def test_translated_bad_offset(self):
        with pytest.raises(InvalidFuzzyObjectError):
            simple_object().translated([1.0])

    def test_scaled(self):
        obj = simple_object().scaled(2.0)
        assert np.allclose(obj.points[-1], [6.0, 0.0])

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(InvalidFuzzyObjectError):
            simple_object().scaled(0.0)


class TestDunder:
    def test_len_and_repr(self):
        obj = simple_object()
        assert len(obj) == 4
        assert "FuzzyObject" in repr(obj)

    def test_equality(self):
        assert simple_object() == simple_object()
        other = simple_object().with_id(99)
        assert simple_object() != other
