"""Unit tests for PreparedQuery: the lower/upper bounds of Section 3.

The key invariants (also listed in DESIGN.md):

* simple lower bound <= improved lower bound <= exact alpha-distance
* exact alpha-distance <= representative upper bound, <= MaxDist upper bound
"""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.query import PreparedQuery
from repro.exceptions import InvalidQueryError
from repro.fuzzy.alpha_distance import alpha_distance
from repro.fuzzy.summary import build_summary
from repro.metrics.counters import MetricsCollector
from tests.conftest import make_fuzzy_object


@pytest.fixture
def objects_and_query(rng):
    objects = [
        make_fuzzy_object(rng, n_points=30, center=rng.random(2) * 12, object_id=i)
        for i in range(15)
    ]
    query = make_fuzzy_object(rng, n_points=30, center=[6.0, 6.0])
    return objects, query


class TestValidation:
    def test_rejects_bad_alpha(self, rng):
        query = make_fuzzy_object(rng)
        with pytest.raises(InvalidQueryError):
            PreparedQuery(query, 0.0)
        with pytest.raises(InvalidQueryError):
            PreparedQuery(query, 1.2)

    def test_query_cut_and_samples(self, rng):
        query = make_fuzzy_object(rng, n_points=50)
        prepared = PreparedQuery(query, 0.5, RuntimeConfig(upper_bound_samples=4))
        assert prepared.query_cut.shape[0] == query.alpha_cut_size(0.5)
        assert prepared.query_samples.shape[0] <= 4
        cut = {tuple(p) for p in prepared.query_cut}
        assert all(tuple(p) in cut for p in prepared.query_samples)


class TestBoundOrdering:
    @pytest.mark.parametrize("alpha", [0.2, 0.5, 0.8, 1.0])
    def test_sandwich_property(self, objects_and_query, alpha):
        objects, query = objects_and_query
        prepared = PreparedQuery(query, alpha)
        for obj in objects:
            summary = build_summary(obj)
            exact = alpha_distance(obj, query, alpha)
            simple_lb = prepared.simple_lower_bound(summary)
            improved_lb = prepared.improved_lower_bound(summary)
            maxdist_ub = prepared.maxdist_upper_bound(summary)
            rep_ub = prepared.representative_upper_bound(summary)

            assert simple_lb <= exact + 1e-9
            assert improved_lb <= exact + 1e-9
            assert exact <= maxdist_ub + 1e-9
            assert exact <= rep_ub + 1e-9
            # The improved lower bound never loses to the simple one.
            assert improved_lb >= simple_lb - 1e-9
            # The combined upper bound is the tighter of the two.
            assert prepared.combined_upper_bound(summary) == pytest.approx(
                min(maxdist_ub, rep_ub)
            )

    def test_improved_bound_strictly_better_somewhere(self, objects_and_query):
        """At high alpha the improved lower bound must beat the simple one for
        at least one object (otherwise the optimisation would be pointless)."""
        objects, query = objects_and_query
        prepared = PreparedQuery(query, 0.9)
        gains = []
        for obj in objects:
            summary = build_summary(obj)
            gains.append(
                prepared.improved_lower_bound(summary) - prepared.simple_lower_bound(summary)
            )
        assert max(gains) > 1e-6

    def test_node_lower_bound_is_mindist(self, objects_and_query):
        from repro.geometry.mbr import min_dist

        objects, query = objects_and_query
        prepared = PreparedQuery(query, 0.5)
        summary = build_summary(objects[0])
        assert prepared.node_lower_bound(summary.support_mbr) == pytest.approx(
            min_dist(prepared.query_mbr, summary.support_mbr)
        )

    def test_distance_to_matches_alpha_distance(self, objects_and_query):
        objects, query = objects_and_query
        prepared = PreparedQuery(query, 0.6)
        for obj in objects[:5]:
            assert prepared.distance_to(obj) == pytest.approx(
                alpha_distance(obj, query, 0.6)
            )


class TestMetricsCharging:
    def test_counters_incremented(self, objects_and_query):
        objects, query = objects_and_query
        metrics = MetricsCollector()
        prepared = PreparedQuery(query, 0.5, metrics=metrics)
        summary = build_summary(objects[0])
        prepared.simple_lower_bound(summary)
        prepared.improved_lower_bound(summary)
        prepared.maxdist_upper_bound(summary)
        prepared.representative_upper_bound(summary)
        prepared.distance_to(objects[0])
        assert metrics.get(MetricsCollector.LOWER_BOUND_EVALUATIONS) == 2
        assert metrics.get(MetricsCollector.UPPER_BOUND_EVALUATIONS) == 2
        assert metrics.get(MetricsCollector.DISTANCE_EVALUATIONS) == 1
