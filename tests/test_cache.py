"""Unit tests for the LRU buffer pool."""

import pytest

from repro.storage.cache import LRUCache


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1

    def test_miss_returns_none(self):
        cache = LRUCache(capacity=2)
        assert cache.get("missing") is None
        assert cache.misses == 1

    def test_eviction_order_is_lru(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh + overwrite
        cache.put("c", 3)  # evicts b, not a
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_zero_capacity_disables_cache(self):
        cache = LRUCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.misses == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=-1)

    def test_clear_keeps_statistics(self):
        cache = LRUCache(capacity=3)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_reset_statistics(self):
        cache = LRUCache(capacity=3)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        cache.reset_statistics()
        assert cache.hits == 0
        assert cache.misses == 0

    def test_hit_rate(self):
        cache = LRUCache(capacity=2)
        assert cache.hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.hit_rate == pytest.approx(0.5)

    def test_capacity_never_exceeded(self):
        cache = LRUCache(capacity=3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3


class TestThreadSafety:
    def test_concurrent_get_put_clear_is_safe(self):
        """Hammer one cache from many threads; shared by the shard pool."""
        import threading

        cache = LRUCache(capacity=16)
        errors = []

        def worker(seed: int) -> None:
            try:
                for i in range(2000):
                    key = (seed * 31 + i) % 64
                    cache.put(key, key)
                    value = cache.get(key)
                    assert value is None or value == key
                    if i % 500 == 499:
                        cache.clear()
                    if i % 97 == 0:
                        cache.invalidate(key)
                        assert len(cache) <= 16
            except Exception as exc:  # noqa: BLE001 - surfaced via assert below
                errors.append(repr(exc))

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(cache) <= 16
        # Every lookup was tallied exactly once despite the contention.
        assert cache.hits + cache.misses == 8 * 2000

    def test_invalidate(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        assert cache.get("a") is None
